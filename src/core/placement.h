// NF state placement (paper §4.3): given per-structure sizes and trace-
// profiled access frequencies, choose a memory region for each stateful data
// structure by solving the capacity-constrained assignment ILP that
// minimizes total access latency. Also provides the exhaustive "expert"
// search of §5.8 for comparison.
#ifndef SRC_CORE_PLACEMENT_H_
#define SRC_CORE_PLACEMENT_H_

#include <map>
#include <string>

#include "src/lang/interp.h"
#include "src/nic/demand.h"
#include "src/nic/isa.h"
#include "src/nic/perf_model.h"
#include "src/workload/workload.h"

namespace clara {

struct PlacementResult {
  bool ok = false;
  std::map<std::string, MemRegion> placement;
  double ilp_objective = 0;     // estimated cycles/packet spent on state access
  uint64_t ilp_nodes = 0;
  double solve_seconds = 0;
};

// Clara's ILP placement. `profile` must come from running the NF on the
// target workload (paper: pcap-profile-driven frequencies).
PlacementResult PlaceState(const Module& m, const NfProfile& profile,
                           const WorkloadSpec& workload, const NicConfig& cfg);

// All-EMEM baseline (the naive port).
std::map<std::string, MemRegion> NaivePlacement(const Module& m);

// Expert emulation: exhaustively tries every feasible placement and returns
// the one with the best simulated throughput/latency. Exponential in the
// number of structures; intended for <= ~8 structures.
PlacementResult ExhaustivePlacement(const Module& m, const NicProgram& nic,
                                    const NfProfile& profile, const WorkloadSpec& workload,
                                    const PerfModel& model, int cores);

}  // namespace clara

#endif  // SRC_CORE_PLACEMENT_H_
