#include "src/core/predictor.h"

#include "src/lang/lower.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/util/binio.h"
#include "src/util/parallel.h"

namespace clara {

void InstructionPredictor::SaveTo(BinWriter& w) const {
  w.U16(0x4950);  // "IP"
  w.Bool(trained_);
  // PredictBlock re-encodes blocks under the trained abstraction mode.
  w.U8(static_cast<uint8_t>(opts_.abstraction));
  vocab_.SaveTo(w);
  lstm_.SaveTo(w);
}

bool InstructionPredictor::LoadFrom(BinReader& r) {
  if (r.U16() != 0x4950) {
    r.Fail("predictor: bad section tag");
    return false;
  }
  bool trained = r.Bool();
  uint8_t mode = r.U8();
  if (r.ok() && mode > static_cast<uint8_t>(AbstractionMode::kRaw)) {
    r.Fail("predictor: unknown abstraction mode");
    return false;
  }
  Vocabulary vocab;
  LstmRegressor lstm;
  if (!vocab.LoadFrom(r) || !lstm.LoadFrom(r)) {
    return false;
  }
  trained_ = trained;
  opts_.abstraction = static_cast<AbstractionMode>(mode);
  vocab_ = std::move(vocab);
  lstm_ = std::move(lstm);
  dataset_ = SeqDataset{};
  return true;
}

std::vector<BlockTruth> CompileGroundTruth(const Module& m, const NicBackendOptions& opts) {
  NicProgram prog = CompileToNic(m, opts);
  std::vector<BlockTruth> out;
  out.reserve(prog.blocks.size());
  for (const auto& b : prog.blocks) {
    out.push_back(BlockTruth{b.counts.compute, b.counts.mem_state});
  }
  return out;
}

void InstructionPredictor::Train() {
  obs::StageTimer train_timer("core.predictor.train", "core.predictor.stage_ms.train");
  std::vector<Program> corpus = [&] {
    obs::StageTimer t("core.predictor.synthesize", "core.predictor.stage_ms.synthesize");
    return SynthesizeCorpus(opts_.train_programs, opts_.synth, opts_.seed);
  }();
  dataset_ = SeqDataset{};
  {
    // Lower + compile the synthetic corpus to get ground-truth labels. The
    // lower/compile pass is data-parallel across programs (with the backend
    // memo absorbing repeat corpora); the vocabulary encode stays serial and
    // in corpus order because token interning is order-sensitive — this keeps
    // the dataset, and therefore the trained model, bit-identical to a fully
    // serial run at any thread count.
    obs::StageTimer t("core.predictor.label", "core.predictor.stage_ms.label");
    struct Labeled {
      bool ok = false;
      LowerResult lr;
      NicProgram nic;
    };
    std::vector<Labeled> labeled = ParallelMap<Labeled>(corpus.size(), [&](size_t i) {
      Labeled out;
      out.lr = LowerProgram(corpus[i]);
      if (!out.lr.ok) {
        return out;  // synthesized programs always lower; defensive
      }
      out.nic = CompileToNicCached(out.lr.module, opts_.backend);
      out.ok = true;
      return out;
    });
    for (const Labeled& lab : labeled) {
      if (!lab.ok) {
        continue;
      }
      const Function& f = lab.lr.module.functions[0];
      for (size_t b = 0; b < f.blocks.size(); ++b) {
        const BasicBlock& blk = f.blocks[b];
        if (blk.instrs.size() < 2) {
          continue;  // trivial terminator-only blocks carry no signal
        }
        SeqExample ex;
        ex.tokens = vocab_.Encode(blk, lab.lr.module, opts_.abstraction);
        ex.target = static_cast<double>(lab.nic.blocks[b].counts.compute);
        dataset_.examples.push_back(std::move(ex));
      }
    }
  }
  vocab_.Freeze();
  dataset_.vocab = vocab_.size();
  {
    obs::StageTimer t("core.predictor.fit", "core.predictor.stage_ms.fit");
    lstm_ = LstmRegressor(opts_.lstm);
    lstm_.Fit(dataset_);
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetGauge("core.predictor.train_examples")
        .Set(static_cast<double>(dataset_.examples.size()));
    reg.GetGauge("core.predictor.vocab_size").Set(static_cast<double>(vocab_.size()));
    reg.GetGauge("core.predictor.train_wmape").Set(lstm_.train_wmape());
  }
  trained_ = true;
}

BlockPrediction InstructionPredictor::PredictBlock(const Module& m,
                                                   const BasicBlock& block) const {
  BlockPrediction p;
  // Memory accesses: counted directly from the IR (paper §3.2).
  BlockCounts counts = CountBlock(block);
  p.mem_state = counts.stateful_mem;
  p.mem_stateless = counts.stateless_mem;
  p.api_calls = counts.api_calls;
  // Compute instructions: learned approximation of the opaque compiler.
  Vocabulary& vocab = const_cast<Vocabulary&>(vocab_);  // frozen: Encode is read-only
  std::vector<int> tokens = vocab.Encode(block, m, opts_.abstraction);
  p.compute = lstm_.Predict(tokens);
  return p;
}

NfPrediction InstructionPredictor::PredictNf(const Module& m) const {
  NfPrediction out;
  const Function& f = m.functions.at(0);
  for (const auto& blk : f.blocks) {
    BlockPrediction bp = PredictBlock(m, blk);
    out.total_compute += bp.compute;
    out.total_mem_state += bp.mem_state;
    out.blocks.push_back(bp);
  }
  return out;
}

}  // namespace clara
