// Algorithm identification for accelerator offloading (paper §4.1).
//
// Features are extracted with Sequential Pattern Extraction: frequent
// contiguous opcode subsequences with high support in one accelerator class
// and high confidence against the "none" class, augmented with hand-crafted
// features (bitwise-op density, pointer-chasing loops, table lookups). A
// one-vs-rest linear SVM classifies each NF into {CRC, LPM, AES, none}.
#ifndef SRC_CORE_ALGO_ID_H_
#define SRC_CORE_ALGO_ID_H_

#include <string>
#include <vector>

#include "src/ml/common.h"
#include "src/ml/linear.h"
#include "src/synth/algorithm_corpus.h"

namespace clara {

struct AlgoIdOptions {
  int ngram_min = 2;
  int ngram_max = 3;
  int max_patterns = 48;
  double min_support = 0.3;     // fraction of in-class programs containing it
  double max_none_rate = 0.15;  // max fraction of "none" programs containing it
  SvmOptions svm;
};

class AlgorithmIdentifier {
 public:
  explicit AlgorithmIdentifier(AlgoIdOptions opts = AlgoIdOptions{}) : opts_(opts) {}

  // Mines SPE patterns from the corpus and trains the SVM.
  void Train(const std::vector<LabeledProgram>& corpus);

  bool trained() const { return trained_; }

  // Classifies a lowered NF module.
  AccelClass Classify(const Module& m) const;

  // Feature vector for a module under the mined patterns (SPE counts,
  // normalized, plus manual features).
  FeatureVec ExtractFeatures(const Module& m) const;

  const std::vector<std::string>& feature_names() const { return feature_names_; }

  // The training dataset (features + labels), exposed so baseline models and
  // PCA (Figures 9, 10a) use identical inputs.
  const TabularDataset& dataset() const { return dataset_; }

  // Artifact serialization of the inference state (mined patterns, feature
  // names, SVM weights); the training dataset is not persisted.
  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  AlgoIdOptions opts_;
  std::vector<std::vector<std::string>> patterns_;  // mined opcode n-grams
  std::vector<std::string> feature_names_;
  TabularDataset dataset_;
  LinearSvm svm_;
  bool trained_ = false;
};

// Opcode-level token stream of a module (block-concatenated, branch-aware);
// the raw material for SPE mining.
std::vector<std::string> OpcodeTokens(const Module& m);

// Manual features (paper: "we also augment this with manually extracted
// features"): {bitwise density, shift density, loop fraction,
// pointer-chase score, table-lookup score, payload density}.
FeatureVec ManualFeatures(const Module& m);

}  // namespace clara

#endif  // SRC_CORE_ALGO_ID_H_
