#include "src/core/analyzer.h"

#include <sstream>

#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/util/binio.h"
#include "src/workload/workload.h"

namespace clara {

std::string OffloadingInsights::ToString(const NicConfig& cfg) const {
  std::ostringstream os;
  os << "=== Clara offloading insights for '" << nf_name << "' ===\n";
  os << "[prediction]   compute instrs/pkt-path: " << prediction.total_compute
     << ", stateful mem instrs: " << prediction.total_mem_state << "\n";
  os << "[accelerator]  " << AccelClassName(accelerator);
  if (accelerator != AccelClass::kNone) {
    os << "  -> rewrite the matching block to use the " << AccelClassName(accelerator)
       << " engine";
  }
  os << "\n";
  os << "[scale-out]    suggested cores: " << suggested_cores << " / " << cfg.num_cores
     << "\n";
  os << "[placement]    ";
  for (const auto& [var, region] : placement.placement) {
    os << var << "->" << MemRegionName(region) << " ";
  }
  os << "(ILP nodes: " << placement.ilp_nodes << ")\n";
  os << "[coalescing]   " << coalescing.packs.size() << " pack(s):";
  for (const auto& pack : coalescing.packs) {
    os << " {";
    for (size_t i = 0; i < pack.vars.size(); ++i) {
      os << (i > 0 ? "," : "") << pack.vars[i];
    }
    os << "|" << pack.pack_bytes << "B}";
  }
  os << "\n";
  os << "[estimate]     naive: " << naive_perf.throughput_mpps << " Mpps / "
     << naive_perf.latency_us << " us;  tuned: " << tuned_perf.throughput_mpps << " Mpps / "
     << tuned_perf.latency_us << " us\n";
  return os.str();
}

void TrainedBundle::SaveTo(BinWriter& w) const {
  w.U16(0x5442);  // "TB"
  SaveSynthProfile(w, synth_profile);
  predictor.SaveTo(w);
  algo_id.SaveTo(w);
  scaleout.SaveTo(w);
  colocation.SaveTo(w);
}

bool TrainedBundle::LoadFrom(BinReader& r) {
  if (r.U16() != 0x5442) {
    r.Fail("trained bundle: bad section tag");
    return false;
  }
  return LoadSynthProfile(r, &synth_profile) && predictor.LoadFrom(r) &&
         algo_id.LoadFrom(r) && scaleout.LoadFrom(r) && colocation.LoadFrom(r);
}

ClaraAnalyzer::ClaraAnalyzer(AnalyzerOptions opts)
    : opts_(std::move(opts)), perf_model_(opts_.nic) {}

ClaraAnalyzer::ClaraAnalyzer(AnalyzerOptions opts, TrainedBundle bundle)
    : opts_(std::move(opts)),
      perf_model_(opts_.nic),
      synth_profile_(std::move(bundle.synth_profile)),
      predictor_(std::move(bundle.predictor)),
      algo_id_(std::move(bundle.algo_id)),
      scaleout_(std::move(bundle.scaleout)),
      colocation_(std::move(bundle.colocation)) {
  trained_ = predictor_.trained() && algo_id_.trained() && scaleout_.trained() &&
             colocation_.trained();
}

TrainedBundle ClaraAnalyzer::ExportTrained() const {
  TrainedBundle b;
  b.synth_profile = synth_profile_;
  b.predictor = predictor_;
  b.algo_id = algo_id_;
  b.scaleout = scaleout_;
  b.colocation = colocation_;
  return b;
}

void ClaraAnalyzer::Train(const std::vector<const Program*>& click_corpus) {
  obs::StageTimer train_timer("core.analyzer.train", "core.analyzer.stage_ms.train");
  {
    // §3.2: guide the synthesizer by the real corpus' AST distribution.
    obs::StageTimer t("core.analyzer.train.measure_corpus",
                      "core.analyzer.stage_ms.measure_corpus");
    synth_profile_ = MeasureCorpus(click_corpus);
  }
  {
    obs::StageTimer t("core.analyzer.train.predictor", "core.analyzer.stage_ms.predictor");
    PredictorOptions popts = opts_.predictor;
    popts.synth.profile = synth_profile_;
    predictor_ = InstructionPredictor(popts);
    predictor_.Train();
  }
  {
    obs::StageTimer t("core.analyzer.train.algo_id", "core.analyzer.stage_ms.algo_id");
    algo_id_ = AlgorithmIdentifier(opts_.algo_id);
    algo_id_.Train(BuildAlgorithmCorpus(opts_.algo_corpus_per_class, opts_.seed));
  }
  {
    obs::StageTimer t("core.analyzer.train.scaleout", "core.analyzer.stage_ms.scaleout");
    ScaleOutOptions sopts = opts_.scaleout;
    sopts.synth.profile = synth_profile_;
    scaleout_ = ScaleOutAdvisor(sopts);
    scaleout_.Train(perf_model_, {WorkloadSpec::LargeFlows(), WorkloadSpec::SmallFlows()});
  }
  {
    obs::StageTimer t("core.analyzer.train.colocation", "core.analyzer.stage_ms.colocation");
    ColocationOptions copts = opts_.colocation;
    copts.synth.profile = synth_profile_;
    colocation_ = ColocationRanker(copts);
    colocation_.Train(perf_model_, WorkloadSpec::SmallFlows());
  }
  trained_ = true;
}

OffloadingInsights ClaraAnalyzer::Analyze(Program program, const WorkloadSpec& workload) const {
  return Analyze(std::move(program), workload, nullptr);
}

OffloadingInsights ClaraAnalyzer::Analyze(Program program, const WorkloadSpec& workload,
                                          const NfPrediction* precomputed) const {
  obs::StageTimer analyze_timer("core.analyzer.analyze", "core.analyzer.stage_ms.analyze");
  OffloadingInsights out;
  out.nf_name = program.name;

  NfInstance nf = [&] {
    obs::StageTimer t("core.analyzer.lower", "core.analyzer.stage_ms.lower");
    return NfInstance(std::move(program));
  }();
  if (!nf.ok()) {
    return out;
  }
  {
    // Workload-specific profiling on the host (paper §4.3: run the NF with
    // its reverse-ported data structures on the specified workload).
    obs::StageTimer t("core.analyzer.profile", "core.analyzer.stage_ms.profile");
    Trace trace = GenerateTrace(workload, opts_.profile_packets);
    for (auto& pkt : trace.packets) {
      nf.Process(pkt);
    }
  }
  const Module& m = nf.module();

  if (precomputed != nullptr) {
    out.prediction = *precomputed;
  } else {
    obs::StageTimer t("core.analyzer.predict", "core.analyzer.stage_ms.predict");
    out.prediction = predictor_.PredictNf(m);
  }
  {
    obs::StageTimer t("core.analyzer.classify", "core.analyzer.stage_ms.classify");
    out.accelerator = algo_id_.Classify(m);
  }

  NicProgram nic;
  NfDemand naive;
  {
    obs::StageTimer t("core.analyzer.demand", "core.analyzer.stage_ms.demand");
    nic = CompileToNic(m, opts_.predictor.backend);
    naive = BuildDemand(m, nic, nf.profile(), workload, opts_.nic);
  }

  {
    obs::StageTimer t("core.analyzer.scaleout", "core.analyzer.stage_ms.scaleout_advise");
    out.suggested_cores = scaleout_.trained() ? scaleout_.SuggestCores(naive)
                                              : perf_model_.OptimalCores(naive);
  }
  {
    obs::StageTimer t("core.analyzer.placement", "core.analyzer.stage_ms.placement");
    out.placement = PlaceState(m, nf.profile(), workload, opts_.nic);
  }
  {
    obs::StageTimer t("core.analyzer.coalescing", "core.analyzer.stage_ms.coalescing");
    out.coalescing = SuggestCoalescing(m, nf.profile());
  }

  {
    obs::StageTimer t("core.analyzer.evaluate", "core.analyzer.stage_ms.evaluate");
    DemandOptions tuned_opts;
    tuned_opts.placement = out.placement.placement;
    tuned_opts.coalescing = out.coalescing.effects;
    NfDemand tuned = BuildDemand(m, nic, nf.profile(), workload, opts_.nic, tuned_opts);
    out.naive_perf = perf_model_.Evaluate(naive, out.suggested_cores);
    out.tuned_perf = perf_model_.Evaluate(tuned, out.suggested_cores);
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("core.analyzer.analyses").Add(1);
  }
  return out;
}

}  // namespace clara
