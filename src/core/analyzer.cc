#include "src/core/analyzer.h"

#include <sstream>

#include "src/lang/interp.h"
#include "src/nic/backend.h"
#include "src/workload/workload.h"

namespace clara {

std::string OffloadingInsights::ToString(const NicConfig& cfg) const {
  std::ostringstream os;
  os << "=== Clara offloading insights for '" << nf_name << "' ===\n";
  os << "[prediction]   compute instrs/pkt-path: " << prediction.total_compute
     << ", stateful mem instrs: " << prediction.total_mem_state << "\n";
  os << "[accelerator]  " << AccelClassName(accelerator);
  if (accelerator != AccelClass::kNone) {
    os << "  -> rewrite the matching block to use the " << AccelClassName(accelerator)
       << " engine";
  }
  os << "\n";
  os << "[scale-out]    suggested cores: " << suggested_cores << " / " << cfg.num_cores
     << "\n";
  os << "[placement]    ";
  for (const auto& [var, region] : placement.placement) {
    os << var << "->" << MemRegionName(region) << " ";
  }
  os << "(ILP nodes: " << placement.ilp_nodes << ")\n";
  os << "[coalescing]   " << coalescing.packs.size() << " pack(s):";
  for (const auto& pack : coalescing.packs) {
    os << " {";
    for (size_t i = 0; i < pack.vars.size(); ++i) {
      os << (i > 0 ? "," : "") << pack.vars[i];
    }
    os << "|" << pack.pack_bytes << "B}";
  }
  os << "\n";
  os << "[estimate]     naive: " << naive_perf.throughput_mpps << " Mpps / "
     << naive_perf.latency_us << " us;  tuned: " << tuned_perf.throughput_mpps << " Mpps / "
     << tuned_perf.latency_us << " us\n";
  return os.str();
}

ClaraAnalyzer::ClaraAnalyzer(AnalyzerOptions opts)
    : opts_(std::move(opts)), perf_model_(opts_.nic) {}

void ClaraAnalyzer::Train(const std::vector<const Program*>& click_corpus) {
  // §3.2: guide the synthesizer by the real corpus' AST distribution.
  synth_profile_ = MeasureCorpus(click_corpus);

  PredictorOptions popts = opts_.predictor;
  popts.synth.profile = synth_profile_;
  predictor_ = InstructionPredictor(popts);
  predictor_.Train();

  algo_id_ = AlgorithmIdentifier(opts_.algo_id);
  algo_id_.Train(BuildAlgorithmCorpus(opts_.algo_corpus_per_class, opts_.seed));

  ScaleOutOptions sopts = opts_.scaleout;
  sopts.synth.profile = synth_profile_;
  scaleout_ = ScaleOutAdvisor(sopts);
  scaleout_.Train(perf_model_, {WorkloadSpec::LargeFlows(), WorkloadSpec::SmallFlows()});

  ColocationOptions copts = opts_.colocation;
  copts.synth.profile = synth_profile_;
  colocation_ = ColocationRanker(copts);
  colocation_.Train(perf_model_, WorkloadSpec::SmallFlows());

  trained_ = true;
}

OffloadingInsights ClaraAnalyzer::Analyze(Program program, const WorkloadSpec& workload) const {
  OffloadingInsights out;
  out.nf_name = program.name;

  NfInstance nf(std::move(program));
  if (!nf.ok()) {
    return out;
  }
  // Workload-specific profiling on the host (paper §4.3: run the NF with its
  // reverse-ported data structures on the specified workload).
  Trace trace = GenerateTrace(workload, opts_.profile_packets);
  for (auto& pkt : trace.packets) {
    nf.Process(pkt);
  }
  const Module& m = nf.module();

  out.prediction = predictor_.PredictNf(m);
  out.accelerator = algo_id_.Classify(m);

  NicProgram nic = CompileToNic(m, opts_.predictor.backend);
  NfDemand naive = BuildDemand(m, nic, nf.profile(), workload, opts_.nic);
  out.suggested_cores = scaleout_.trained() ? scaleout_.SuggestCores(naive)
                                            : perf_model_.OptimalCores(naive);

  out.placement = PlaceState(m, nf.profile(), workload, opts_.nic);
  out.coalescing = SuggestCoalescing(m, nf.profile());

  DemandOptions tuned_opts;
  tuned_opts.placement = out.placement.placement;
  tuned_opts.coalescing = out.coalescing.effects;
  NfDemand tuned = BuildDemand(m, nic, nf.profile(), workload, opts_.nic, tuned_opts);
  out.naive_perf = perf_model_.Evaluate(naive, out.suggested_cores);
  out.tuned_perf = perf_model_.Evaluate(tuned, out.suggested_cores);
  return out;
}

}  // namespace clara
