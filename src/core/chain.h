// NF service chains and partial offloading analysis.
//
// Click deployments compose elements into chains; the paper's §6 notes that
// handling *partial* offloading — splitting a chain between host CPUs and
// the SmartNIC — requires additionally reasoning about host performance and
// the NIC-host crossing. This module provides both:
//
//   * CombineChain: aggregate the per-packet demands of a pipeline that runs
//     entirely on the NIC (run-to-completion over all stages).
//   * PartitionAdvisor: evaluate every prefix split "stages [0,k) on the
//     NIC, [k,n) on the host" under a simple host model plus PCIe crossing
//     costs, and suggest the best operating point.
#ifndef SRC_CORE_CHAIN_H_
#define SRC_CORE_CHAIN_H_

#include <string>
#include <vector>

#include "src/nic/perf_model.h"

namespace clara {

struct ChainStage {
  std::string name;
  NfDemand demand;  // per-packet demand profiled for the NIC target
};

// Aggregates a chain into one run-to-completion demand: compute/engine/packet
// traffic add; state demands concatenate (names are prefixed with the stage
// name on collision).
NfDemand CombineChain(const std::vector<ChainStage>& stages);

// Host-side execution model: fewer, much faster cores with a deep cache
// hierarchy, plus a PCIe link to the NIC.
struct HostConfig {
  int cores = 8;
  double freq_ghz = 3.4;
  // Wimpy-core instructions retire faster on the host (superscalar, OoO).
  double ipc_advantage = 3.0;
  // Average cycles per stateful access (cache-hit dominated).
  double mem_cycles = 30;
  // NIC<->host crossing.
  double pcie_latency_us = 0.9;
  double pcie_gbps = 100.0;  // effective DMA bandwidth

  double MaxPcieMpps(double wire_bytes) const {
    return pcie_gbps * 1e3 / (wire_bytes * 8.0);
  }
};

struct SplitPoint {
  int nic_stages = 0;  // stages [0, nic_stages) on the NIC, rest on the host
  double throughput_mpps = 0;
  double latency_us = 0;
  // Which side saturates at this split.
  enum class Bound { kNic, kHost, kPcie } bound = Bound::kNic;
};

class PartitionAdvisor {
 public:
  PartitionAdvisor(PerfModel nic_model, HostConfig host)
      : nic_(std::move(nic_model)), host_(host) {}

  // Evaluates every prefix split of the chain with `nic_cores` micro-engines
  // reserved for the NIC part.
  std::vector<SplitPoint> EvaluateSplits(const std::vector<ChainStage>& stages,
                                         int nic_cores) const;

  // The split with the best throughput (ties: lower latency).
  SplitPoint Best(const std::vector<ChainStage>& stages, int nic_cores) const;

  // Host-only evaluation of a combined demand (exposed for tests).
  SplitPoint EvaluateHostOnly(const NfDemand& demand) const;

 private:
  PerfModel nic_;
  HostConfig host_;
};

}  // namespace clara

#endif  // SRC_CORE_CHAIN_H_
