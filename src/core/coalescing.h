// Memory access coalescing (paper §4.4): cluster global variables by their
// per-block access vectors (k-means) and suggest packing co-accessed
// variables adjacently, fetched with one coalesced access sized to the pack.
// Also provides the exhaustive "expert" packing search of §5.8.
#ifndef SRC_CORE_COALESCING_H_
#define SRC_CORE_COALESCING_H_

#include <map>
#include <string>
#include <vector>

#include "src/lang/interp.h"
#include "src/nic/demand.h"
#include "src/nic/perf_model.h"

namespace clara {

struct VarPack {
  std::vector<std::string> vars;
  int pack_bytes = 0;           // suggested coalesced access size
};

struct CoalescingPlan {
  std::vector<VarPack> packs;   // only packs with >= 2 variables
  std::map<std::string, CoalesceEffect> effects;  // feed into BuildDemand
  int clusters_considered = 0;
};

// Clara's clustering-based plan. Only scalar state variables participate
// (arrays/maps are packed internally by their element layout).
CoalescingPlan SuggestCoalescing(const Module& m, const NfProfile& profile);

// Expert emulation: exhaustively tries every partition of the most
// frequently accessed scalars (<= max_vars) and returns the plan with the
// best simulated performance.
CoalescingPlan ExhaustiveCoalescing(const Module& m, const NicProgram& nic,
                                    const NfProfile& profile, const WorkloadSpec& workload,
                                    const PerfModel& model, int cores, int max_vars = 6);

}  // namespace clara

#endif  // SRC_CORE_COALESCING_H_
