// Multicore scale-out factor analysis (paper §4.2).
//
// Clara synthesizes training programs spanning a range of arithmetic
// intensities, profiles each under training workloads, measures optimal core
// counts on the (opaque) NIC by sweeping schedules, and fits a GBDT cost
// model mapping NF/workload features to the best core count — the TVM-style
// "separate the algorithm from the schedule" search.
#ifndef SRC_CORE_SCALEOUT_H_
#define SRC_CORE_SCALEOUT_H_

#include <memory>
#include <vector>

#include "src/ml/ensemble.h"
#include "src/nic/demand.h"
#include "src/nic/perf_model.h"
#include "src/synth/synth.h"

namespace clara {

struct ScaleOutOptions {
  size_t train_programs = 160;
  uint64_t seed = 777;
  GbdtOptions gbdt;
  SynthOptions synth;
};

class ScaleOutAdvisor {
 public:
  explicit ScaleOutAdvisor(ScaleOutOptions opts = ScaleOutOptions{}) : opts_(opts) {}

  // Synthesizes programs, profiles them under the given workloads, sweeps
  // core counts on `model`, and trains the regressor.
  void Train(const PerfModel& model, const std::vector<WorkloadSpec>& workloads);

  bool trained() const { return trained_; }

  // Suggested core count for a demand (clamped to [1, num_cores]).
  int SuggestCores(const NfDemand& demand) const;

  // Feature vector shared with baseline models (Figure 11a).
  static FeatureVec Features(const NfDemand& demand);

  const TabularDataset& dataset() const { return dataset_; }

  // Artifact serialization of the inference state (core-count clamp + GBDT);
  // the training dataset is not persisted.
  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

 private:
  ScaleOutOptions opts_;
  int num_cores_ = 60;
  TabularDataset dataset_;
  GbdtRegressor gbdt_;
  bool trained_ = false;
};

}  // namespace clara

#endif  // SRC_CORE_SCALEOUT_H_
