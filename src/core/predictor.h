// Cross-platform performance prediction (paper §3, Figure 3).
//
// The predictor is trained on synthesized (IR, NIC machine code) pairs
// produced by the data-synthesis engine and the (opaque-to-Clara) NIC
// backend. At inference time it takes an unported NF's IR and predicts, per
// basic block, the number of NIC compute instructions (LSTM+FC) while
// counting stateful memory accesses directly from IR load/stores (§3.2).
// Framework API calls are costed from their reverse-ported profiles (§3.3).
#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <memory>
#include <vector>

#include "src/ir/classify.h"
#include "src/ir/vocab.h"
#include "src/ml/lstm.h"
#include "src/nic/backend.h"
#include "src/synth/synth.h"

namespace clara {

struct PredictorOptions {
  size_t train_programs = 300;
  uint64_t seed = 1234;
  LstmOptions lstm;
  AbstractionMode abstraction = AbstractionMode::kCompacted;  // kRaw = ablation
  NicBackendOptions backend;
  SynthOptions synth;  // synth.profile should come from MeasureCorpus
};

struct BlockPrediction {
  double compute = 0;       // predicted NIC compute instructions
  uint32_t mem_state = 0;   // counted stateful accesses (IR load/store state)
  uint32_t mem_stateless = 0;
  uint32_t api_calls = 0;
};

struct NfPrediction {
  std::vector<BlockPrediction> blocks;
  double total_compute = 0;
  uint32_t total_mem_state = 0;
};

class InstructionPredictor {
 public:
  explicit InstructionPredictor(PredictorOptions opts = PredictorOptions{}) : opts_(opts) {}

  // Synthesizes the training corpus, compiles it with the NIC backend for
  // ground-truth labels, and trains the LSTM+FC model.
  void Train();

  bool trained() const { return trained_; }

  BlockPrediction PredictBlock(const Module& m, const BasicBlock& block) const;
  NfPrediction PredictNf(const Module& m) const;

  // The frozen training artifacts, exposed so baseline models (DNN/CNN/
  // AutoML) can be trained on the identical dataset (Figure 8).
  const SeqDataset& dataset() const { return dataset_; }
  const Vocabulary& vocab() const { return vocab_; }
  const LstmRegressor& model() const { return lstm_; }
  const PredictorOptions& options() const { return opts_; }

  // Artifact serialization of the inference state (vocabulary, LSTM weights,
  // abstraction mode). The training dataset is deliberately not persisted, so
  // dataset() is empty on a loaded predictor.
  void SaveTo(BinWriter& w) const;
  bool LoadFrom(BinReader& r);

  // Inference backend selection (src/ml/infer.h); forwards to the LSTM.
  void SetInferBackend(InferBackend backend) { lstm_.SetInferBackend(backend); }
  InferBackend infer_backend() const { return lstm_.infer_backend(); }

  // Quantized-weights frame plumbing for the artifact store.
  Int8LstmParams QuantizedParams() const { return lstm_.QuantizedParams(); }
  bool AttachQuantized(Int8LstmParams quant, std::string* error) {
    return lstm_.AttachQuantized(std::move(quant), error);
  }

 private:
  PredictorOptions opts_;
  Vocabulary vocab_;
  SeqDataset dataset_;
  LstmRegressor lstm_;
  bool trained_ = false;
};

// Ground-truth block labels from the NIC backend ("compiling the ported
// program with NFCC"). Used for evaluation only — Clara's analyses never
// look at these for unported NFs.
struct BlockTruth {
  uint32_t compute = 0;
  uint32_t mem_state = 0;
};

std::vector<BlockTruth> CompileGroundTruth(const Module& m,
                                           const NicBackendOptions& opts = NicBackendOptions{});

}  // namespace clara

#endif  // SRC_CORE_PREDICTOR_H_
