#include "src/core/coalescing.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "src/ml/kmeans.h"

namespace clara {
namespace {

// Scalar state variables with any recorded accesses, by module index.
std::vector<size_t> CoalescableVars(const Module& m, const NfProfile& profile) {
  std::vector<size_t> vars;
  for (size_t v = 0; v < m.state.size(); ++v) {
    if (m.state[v].kind == StateKind::kScalar &&
        profile.state_reads[v] + profile.state_writes[v] > 0) {
      vars.push_back(v);
    }
  }
  return vars;
}

// Normalized per-block access vector of variable v (paper §4.4: p_i =
// c_i / sum c_i over the k code blocks).
FeatureVec AccessVector(const NfProfile& profile, size_t v) {
  size_t blocks = profile.block_var_access.size();
  FeatureVec vec(blocks, 0.0);
  double total = 0;
  for (size_t b = 0; b < blocks; ++b) {
    vec[b] = static_cast<double>(profile.block_var_access[b][v]);
    total += vec[b];
  }
  if (total > 0) {
    for (auto& p : vec) {
      p /= total;
    }
  }
  return vec;
}

CoalescingPlan PlanFromGroups(const Module& m,
                              const std::vector<std::vector<size_t>>& groups,
                              const NfProfile& profile) {
  CoalescingPlan plan;
  for (const auto& group : groups) {
    if (group.size() < 2) {
      continue;
    }
    VarPack pack;
    int bytes = 0;
    for (size_t v : group) {
      pack.vars.push_back(m.state[v].name);
      bytes += BitWidth(m.state[v].elem_type) / 8;
    }
    pack.pack_bytes = bytes;
    double pack_words = std::max(1.0, std::ceil(bytes / 4.0));

    // Co-access-aware access reduction: per code block, the pack needs one
    // wide transfer where the members previously issued one access each, so
    // the packed count is the per-block max over members while the unpacked
    // count is the per-block sum. Packing variables that are never accessed
    // together therefore saves nothing (and costs width) — exactly why the
    // clustering step matters.
    double packed = 0;
    double unpacked = 0;
    for (size_t b = 0; b < profile.block_var_access.size(); ++b) {
      uint64_t block_max = 0;
      for (size_t v : group) {
        uint64_t a = profile.block_var_access[b][v];
        block_max = std::max(block_max, a);
        unpacked += static_cast<double>(a);
      }
      packed += static_cast<double>(block_max);
    }
    double access_scale = unpacked > 0 ? packed / unpacked : 1.0;
    for (size_t v : group) {
      CoalesceEffect e;
      e.access_scale = access_scale;
      double own_words = std::max(1.0, std::ceil(BitWidth(m.state[v].elem_type) / 8.0 / 4.0));
      e.words_scale = pack_words / own_words;
      plan.effects[m.state[v].name] = e;
    }
    plan.packs.push_back(std::move(pack));
  }
  return plan;
}

}  // namespace

CoalescingPlan SuggestCoalescing(const Module& m, const NfProfile& profile) {
  std::vector<size_t> vars = CoalescableVars(m, profile);
  if (vars.size() < 2) {
    return CoalescingPlan{};
  }
  std::vector<FeatureVec> vectors;
  vectors.reserve(vars.size());
  for (size_t v : vars) {
    vectors.push_back(AccessVector(profile, v));
  }
  int max_k = static_cast<int>(vars.size());
  int k = ChooseKByElbow(vectors, max_k);
  KMeansResult km = KMeans(vectors, k);

  std::vector<std::vector<size_t>> groups(k);
  for (size_t i = 0; i < vars.size(); ++i) {
    groups[km.assignment[i]].push_back(vars[i]);
  }
  CoalescingPlan plan = PlanFromGroups(m, groups, profile);
  plan.clusters_considered = k;
  return plan;
}

namespace {

// Enumerates all set partitions of [0, n) via restricted growth strings:
// rgs[i] is the group of element i, and rgs[i] <= 1 + max(rgs[0..i-1]).
void EnumeratePartitionsRec(std::vector<int>& rgs, int pos, int max_so_far,
                            const std::function<void(const std::vector<int>&)>& fn) {
  if (pos == static_cast<int>(rgs.size())) {
    fn(rgs);
    return;
  }
  for (int g = 0; g <= max_so_far + 1; ++g) {
    rgs[pos] = g;
    EnumeratePartitionsRec(rgs, pos + 1, std::max(max_so_far, g), fn);
  }
}

void EnumeratePartitions(int n, const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> rgs(n, 0);
  EnumeratePartitionsRec(rgs, 1, 0, fn);  // element 0 always in group 0
}

}  // namespace

CoalescingPlan ExhaustiveCoalescing(const Module& m, const NicProgram& nic,
                                    const NfProfile& profile, const WorkloadSpec& workload,
                                    const PerfModel& model, int cores, int max_vars) {
  std::vector<size_t> vars = CoalescableVars(m, profile);
  // Keep only the most frequently accessed variables (paper §5.8: "the total
  // number of variables is too large for an exhaustive analysis").
  std::sort(vars.begin(), vars.end(), [&](size_t a, size_t b) {
    return profile.state_reads[a] + profile.state_writes[a] >
           profile.state_reads[b] + profile.state_writes[b];
  });
  if (static_cast<int>(vars.size()) > max_vars) {
    vars.resize(max_vars);
  }
  if (vars.size() < 2) {
    return CoalescingPlan{};
  }

  CoalescingPlan best;
  double best_score = -1;
  int considered = 0;
  EnumeratePartitions(static_cast<int>(vars.size()), [&](const std::vector<int>& rgs) {
    ++considered;
    int ngroups = *std::max_element(rgs.begin(), rgs.end()) + 1;
    std::vector<std::vector<size_t>> groups(ngroups);
    for (size_t i = 0; i < vars.size(); ++i) {
      groups[rgs[i]].push_back(vars[i]);
    }
    CoalescingPlan plan = PlanFromGroups(m, groups, profile);
    DemandOptions opts;
    opts.coalescing = plan.effects;
    NfDemand demand = BuildDemand(m, nic, profile, workload, model.config(), opts);
    PerfPoint p = model.Evaluate(demand, cores);
    double score = p.throughput_mpps / std::max(1e-9, p.latency_us);
    if (score > best_score) {
      best_score = score;
      best = std::move(plan);
    }
  });
  best.clusters_considered = considered;
  return best;
}

}  // namespace clara
