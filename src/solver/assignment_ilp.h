// Exact 0/1 ILP solver for capacity-constrained assignment problems:
//
//   minimize    sum_{i,j} cost[i][j] * x_ij
//   subject to  sum_j x_ij = 1                 (each item placed once)
//               sum_i size[i] * x_ij <= cap[j] (location capacities)
//
// This is the paper's §4.3 state-placement ILP (cost[i][j] = access latency
// of location j x access frequency of structure i). Instance sizes are tiny
// (k data structures x t memory levels), so branch-and-bound with a
// capacity-unaware lower bound solves them exactly in microseconds.
#ifndef SRC_SOLVER_ASSIGNMENT_ILP_H_
#define SRC_SOLVER_ASSIGNMENT_ILP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clara {

struct AssignmentProblem {
  // cost[i][j]: cost of placing item i at location j. Use Infeasible() to
  // forbid a pairing (e.g. structure larger than the location).
  std::vector<std::vector<double>> cost;
  std::vector<uint64_t> size;      // per item
  std::vector<uint64_t> capacity;  // per location

  static double Infeasible() { return 1e300; }
  size_t items() const { return cost.size(); }
  size_t locations() const { return capacity.size(); }
};

struct AssignmentSolution {
  bool feasible = false;
  double objective = 0;
  std::vector<int> location;  // per item
  uint64_t nodes_explored = 0;
};

AssignmentSolution SolveAssignment(const AssignmentProblem& problem);

// Greedy baseline (highest-cost-spread item first, cheapest feasible
// location); used as the branch-and-bound incumbent and as the ablation
// comparison for the ILP.
AssignmentSolution GreedyAssignment(const AssignmentProblem& problem);

}  // namespace clara

#endif  // SRC_SOLVER_ASSIGNMENT_ILP_H_
