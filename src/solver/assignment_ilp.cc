#include "src/solver/assignment_ilp.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace clara {
namespace {

// Items ordered by decreasing cost spread (max - min): the most consequential
// decisions first, which tightens the bound quickly.
std::vector<size_t> OrderBySpread(const AssignmentProblem& p) {
  std::vector<size_t> order(p.items());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> spread(p.items(), 0.0);
  for (size_t i = 0; i < p.items(); ++i) {
    double lo = std::numeric_limits<double>::max();
    double hi = 0;
    for (double c : p.cost[i]) {
      if (c >= AssignmentProblem::Infeasible()) {
        continue;
      }
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    spread[i] = hi - lo;
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return spread[a] > spread[b]; });
  return order;
}

class BranchAndBound {
 public:
  explicit BranchAndBound(const AssignmentProblem& p) : p_(p), order_(OrderBySpread(p)) {
    // Capacity-unaware lower bound suffix: min feasible cost of each item.
    min_cost_suffix_.assign(p_.items() + 1, 0.0);
    for (size_t k = p_.items(); k-- > 0;) {
      size_t item = order_[k];
      double best = AssignmentProblem::Infeasible();
      for (size_t j = 0; j < p_.locations(); ++j) {
        best = std::min(best, p_.cost[item][j]);
      }
      min_cost_suffix_[k] = min_cost_suffix_[k + 1] + best;
    }
  }

  AssignmentSolution Run() {
    AssignmentSolution greedy = GreedyAssignment(p_);
    best_ = greedy;
    if (!best_.feasible) {
      best_.objective = std::numeric_limits<double>::max();
    }
    std::vector<uint64_t> used(p_.locations(), 0);
    std::vector<int> placement(p_.items(), -1);
    Recurse(0, 0.0, used, placement);
    best_.nodes_explored = nodes_;
    return best_;
  }

 private:
  void Recurse(size_t depth, double cost_so_far, std::vector<uint64_t>& used,
               std::vector<int>& placement) {
    ++nodes_;
    if (cost_so_far + min_cost_suffix_[depth] >= best_.objective) {
      return;  // bound
    }
    if (depth == p_.items()) {
      best_.feasible = true;
      best_.objective = cost_so_far;
      best_.location = placement;
      return;
    }
    size_t item = order_[depth];
    // Try locations cheapest-first for this item.
    std::vector<size_t> locs(p_.locations());
    std::iota(locs.begin(), locs.end(), 0);
    std::sort(locs.begin(), locs.end(),
              [&](size_t a, size_t b) { return p_.cost[item][a] < p_.cost[item][b]; });
    for (size_t j : locs) {
      double c = p_.cost[item][j];
      if (c >= AssignmentProblem::Infeasible()) {
        continue;
      }
      if (used[j] + p_.size[item] > p_.capacity[j]) {
        continue;
      }
      used[j] += p_.size[item];
      placement[item] = static_cast<int>(j);
      Recurse(depth + 1, cost_so_far + c, used, placement);
      placement[item] = -1;
      used[j] -= p_.size[item];
    }
  }

  const AssignmentProblem& p_;
  std::vector<size_t> order_;
  std::vector<double> min_cost_suffix_;
  AssignmentSolution best_;
  uint64_t nodes_ = 0;
};

}  // namespace

AssignmentSolution GreedyAssignment(const AssignmentProblem& p) {
  AssignmentSolution s;
  s.location.assign(p.items(), -1);
  std::vector<uint64_t> used(p.locations(), 0);
  double total = 0;
  for (size_t i : OrderBySpread(p)) {
    int best = -1;
    double best_cost = AssignmentProblem::Infeasible();
    for (size_t j = 0; j < p.locations(); ++j) {
      if (p.cost[i][j] < best_cost && used[j] + p.size[i] <= p.capacity[j]) {
        best = static_cast<int>(j);
        best_cost = p.cost[i][j];
      }
    }
    if (best < 0) {
      return s;  // infeasible
    }
    s.location[i] = best;
    used[best] += p.size[i];
    total += best_cost;
  }
  s.feasible = true;
  s.objective = total;
  return s;
}

AssignmentSolution SolveAssignment(const AssignmentProblem& p) {
  if (p.items() == 0) {
    AssignmentSolution s;
    s.feasible = true;
    return s;
  }
  return BranchAndBound(p).Run();
}

}  // namespace clara
