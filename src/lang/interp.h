// Trace-driven NF interpreter.
//
// Executes an NF program AST against packets, maintaining real NF state
// (scalars, arrays, and probe-accurate hash maps) and recording the
// workload-specific profile that Clara's porting-strategy analyses consume:
// per-IR-block execution counts, per-state-variable access frequencies, and
// the (block x variable) access matrix used for coalescing (§4.4).
//
// The interpreter's map semantics (SimMap) implement exactly the probe loops
// the lowering expands (src/lang/lower.cc), so execution counts attach to IR
// blocks with symmetric control flow — the reverse-porting fidelity property
// of paper §3.3.
#ifndef SRC_LANG_INTERP_H_
#define SRC_LANG_INTERP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/lower.h"
#include "src/nf/lpm.h"
#include "src/nf/packet.h"
#include "src/util/rng.h"

namespace clara {

namespace obs {
class Counter;
}  // namespace obs

// A hash map with the probe behaviour of the lowered IR: bounded scan,
// key0 == 0 means empty, NIC variant probes within a fixed bucket, host
// variant probes linearly with wraparound.
class SimMap {
 public:
  explicit SimMap(const StateDecl& decl);

  struct OpResult {
    bool found = false;      // find: hit; insert: slot written; erase: entry removed
    uint32_t probes = 0;     // probe-body executions
    uint32_t continues = 0;  // latch executions
    bool exhausted = false;  // probe bound reached without stopping
    bool stopped_empty = false;
    uint64_t index = 0;      // slot index on found
  };

  OpResult Find(const std::vector<uint64_t>& keys, std::vector<uint64_t>* values_out);
  OpResult Insert(const std::vector<uint64_t>& keys, const std::vector<uint64_t>& values);
  OpResult Erase(const std::vector<uint64_t>& keys);

  size_t entries() const { return entries_; }
  size_t slot_count() const { return slot_count_; }
  void Clear();

  // Slot-level inspection for the differential harness (src/nic/diff.h),
  // which compares SimMap contents field-by-field against the lowered
  // backing-store byte image.
  size_t num_keys() const { return nkeys_; }
  size_t num_values() const { return nvals_; }
  uint64_t KeyAt(size_t slot, size_t k) const { return keys_[slot * nkeys_ + k]; }
  uint64_t ValueAt(size_t slot, size_t v) const { return values_[slot * nvals_ + v]; }

 private:
  struct Probe {
    uint64_t start;
    uint32_t bound;
  };
  Probe StartProbe(const std::vector<uint64_t>& keys) const;
  uint64_t Advance(uint64_t idx) const;
  bool KeyMatches(uint64_t idx, const std::vector<uint64_t>& keys) const;

  size_t nkeys_;
  size_t nvals_;
  bool nic_;
  uint32_t spb_;
  uint32_t buckets_;
  size_t slot_count_;
  size_t entries_ = 0;
  std::vector<uint64_t> keys_;    // slot-major
  std::vector<uint64_t> values_;  // slot-major
};

// Workload-specific execution profile.
struct NfProfile {
  uint64_t packets = 0;
  uint64_t sends = 0;
  uint64_t drops = 0;
  std::vector<uint64_t> block_exec;                    // [ir block]
  std::vector<uint64_t> state_reads;                   // [state var]
  std::vector<uint64_t> state_writes;                  // [state var]
  std::vector<std::vector<uint64_t>> block_var_access; // [ir block][state var]
  std::map<std::string, uint64_t> api_calls;

  uint64_t StateAccesses(size_t var) const { return state_reads[var] + state_writes[var]; }
};

// An executable NF: owns the program, its lowered IR module, and its state.
class NfInstance {
 public:
  // Takes ownership of `program`; lowers it immediately.
  explicit NfInstance(Program program, uint64_t seed = 1);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  const Program& program() const { return program_; }
  const Module& module() const { return module_; }

  // Runs the handler on one packet, mutating it (header writes, verdict).
  void Process(Packet& pkt);

  const NfProfile& profile() const { return profile_; }
  void ResetProfile();

  // Resets all NF state (maps, scalars, arrays) to initial values.
  void ResetState();

  // Test/inspection hooks.
  uint64_t ReadScalar(const std::string& name) const;
  uint64_t ReadArray(const std::string& name, size_t index) const;
  SimMap* FindMap(const std::string& name);

  // Table backing the lpm_hw accelerator API (iplookup's ported form).
  void SetLpmAccelTable(const LpmTable* table) { lpm_accel_ = table; }

 private:
  enum class Flow { kNormal, kReturned };

  uint64_t EvalExpr(const Expr& e, int block);
  Flow ExecStmt(Stmt& s);
  Flow ExecBody(std::vector<StmtPtr>& body);
  uint64_t CallApi(const std::string& name, const std::vector<uint64_t>& args, int block);

  void RecordStateRead(int sym, int block, uint64_t n = 1);
  void RecordStateWrite(int sym, int block, uint64_t n = 1);
  void AttributeMapOp(const Stmt& s, const SimMap::OpResult& r, size_t nkeys,
                      size_t value_reads, size_t value_writes, int sym);

  uint64_t ReadPacketField(const std::string& name) const;
  void WritePacketField(const std::string& name, uint64_t v);

  Program program_;
  Module module_;
  bool ok_ = false;
  std::string error_;

  std::vector<uint64_t> locals_;               // by stack-slot index
  std::vector<std::vector<uint64_t>> arrays_;  // per state var (scalars: size 1)
  std::vector<std::unique_ptr<SimMap>> maps_;  // per state var (null if not map)

  NfProfile profile_;
  // Cached telemetry handles (lang.interp.<element>.*), resolved on first
  // use with telemetry enabled; see src/obs/metrics.h for handle stability.
  obs::Counter* obs_packets_ = nullptr;
  obs::Counter* obs_api_calls_ = nullptr;
  obs::Counter* obs_drops_ = nullptr;
  Packet* pkt_ = nullptr;
  Rng rng_;
  const LpmTable* lpm_accel_ = nullptr;
  std::map<uint64_t, uint64_t> flow_cache_;  // accelerator-backed flow cache
};

}  // namespace clara

#endif  // SRC_LANG_INTERP_H_
