#include "src/lang/interp.h"

#include <cassert>

#include "src/nf/checksum.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace clara {
namespace {

uint64_t Mask(uint64_t v, Type t) {
  switch (t) {
    case Type::kVoid: return 0;
    case Type::kI1: return v & 1;
    case Type::kI8: return v & 0xff;
    case Type::kI16: return v & 0xffff;
    case Type::kI32: return v & 0xffffffffULL;
    case Type::kI64: return v;
  }
  return v;
}

}  // namespace

SimMap::SimMap(const StateDecl& decl)
    : nkeys_(decl.key_fields.size()),
      nvals_(decl.value_fields.size()),
      nic_(decl.impl == MapImpl::kNicFixedBucket),
      spb_(decl.slots_per_bucket == 0 ? 1 : decl.slots_per_bucket) {
  if (nic_) {
    buckets_ = (decl.capacity + spb_ - 1) / spb_;
    if (buckets_ == 0) {
      buckets_ = 1;
    }
    slot_count_ = static_cast<size_t>(buckets_) * spb_;
  } else {
    buckets_ = 0;
    slot_count_ = decl.capacity == 0 ? 1 : decl.capacity;
  }
  keys_.assign(slot_count_ * nkeys_, 0);
  values_.assign(slot_count_ * nvals_, 0);
}

SimMap::Probe SimMap::StartProbe(const std::vector<uint64_t>& keys) const {
  uint32_t h = MapFieldHash(keys.data(), keys.size());
  if (nic_) {
    return Probe{static_cast<uint64_t>(h % buckets_) * spb_, spb_};
  }
  return Probe{h % slot_count_, static_cast<uint32_t>(slot_count_)};
}

uint64_t SimMap::Advance(uint64_t idx) const {
  return nic_ ? idx + 1 : (idx + 1) % slot_count_;
}

bool SimMap::KeyMatches(uint64_t idx, const std::vector<uint64_t>& keys) const {
  for (size_t i = 0; i < nkeys_; ++i) {
    if (keys_[idx * nkeys_ + i] != keys[i]) {
      return false;
    }
  }
  return true;
}

SimMap::OpResult SimMap::Find(const std::vector<uint64_t>& keys,
                              std::vector<uint64_t>* values_out) {
  OpResult r;
  Probe p = StartProbe(keys);
  uint64_t idx = p.start;
  for (uint32_t n = 0; n < p.bound; ++n) {
    ++r.probes;
    if (KeyMatches(idx, keys)) {
      r.found = true;
      r.index = idx;
      if (values_out != nullptr) {
        values_out->assign(values_.begin() + idx * nvals_,
                           values_.begin() + (idx + 1) * nvals_);
      }
      return r;
    }
    if (keys_[idx * nkeys_] == 0) {
      r.stopped_empty = true;
      return r;
    }
    ++r.continues;
    idx = Advance(idx);
  }
  r.exhausted = true;
  return r;
}

SimMap::OpResult SimMap::Insert(const std::vector<uint64_t>& keys,
                                const std::vector<uint64_t>& values) {
  OpResult r;
  Probe p = StartProbe(keys);
  uint64_t idx = p.start;
  for (uint32_t n = 0; n < p.bound; ++n) {
    ++r.probes;
    bool match = KeyMatches(idx, keys);
    bool empty = keys_[idx * nkeys_] == 0;
    if (match || empty) {
      if (empty && !match) {
        r.stopped_empty = true;
        ++entries_;
      }
      for (size_t i = 0; i < nkeys_; ++i) {
        keys_[idx * nkeys_ + i] = keys[i];
      }
      for (size_t i = 0; i < nvals_ && i < values.size(); ++i) {
        values_[idx * nvals_ + i] = values[i];
      }
      r.found = true;
      r.index = idx;
      return r;
    }
    ++r.continues;
    idx = Advance(idx);
  }
  r.exhausted = true;  // structure full: baremetal insert fails
  return r;
}

SimMap::OpResult SimMap::Erase(const std::vector<uint64_t>& keys) {
  OpResult r;
  Probe p = StartProbe(keys);
  uint64_t idx = p.start;
  for (uint32_t n = 0; n < p.bound; ++n) {
    ++r.probes;
    if (KeyMatches(idx, keys)) {
      keys_[idx * nkeys_] = 0;  // mark invalid only (paper §3.3)
      r.found = true;
      r.index = idx;
      if (entries_ > 0) {
        --entries_;
      }
      return r;
    }
    if (keys_[idx * nkeys_] == 0) {
      r.stopped_empty = true;
      return r;
    }
    ++r.continues;
    idx = Advance(idx);
  }
  r.exhausted = true;
  return r;
}

void SimMap::Clear() {
  std::fill(keys_.begin(), keys_.end(), 0);
  std::fill(values_.begin(), values_.end(), 0);
  entries_ = 0;
}

NfInstance::NfInstance(Program program, uint64_t seed)
    : program_(std::move(program)), rng_(seed) {
  LowerResult lr = LowerProgram(program_);
  if (!lr.ok) {
    error_ = lr.error;
    return;
  }
  module_ = std::move(lr.module);
  ok_ = true;
  locals_.assign(module_.functions[0].slots.size(), 0);
  arrays_.resize(program_.state.size());
  maps_.resize(program_.state.size());
  ResetState();
  ResetProfile();
}

void NfInstance::ResetState() {
  for (size_t i = 0; i < program_.state.size(); ++i) {
    const StateDecl& d = program_.state[i];
    switch (d.kind) {
      case StateKind::kScalar:
        arrays_[i].assign(1, d.init.empty() ? 0 : d.init[0]);
        break;
      case StateKind::kArray:
        arrays_[i].assign(d.length, 0);
        for (size_t k = 0; k < d.init.size() && k < d.length; ++k) {
          arrays_[i][k] = d.init[k];
        }
        break;
      case StateKind::kMap:
        maps_[i] = std::make_unique<SimMap>(d);
        break;
    }
  }
  flow_cache_.clear();
}

void NfInstance::ResetProfile() {
  profile_ = NfProfile{};
  size_t nblocks = module_.functions[0].blocks.size();
  size_t nvars = module_.state.size();
  profile_.block_exec.assign(nblocks, 0);
  profile_.state_reads.assign(nvars, 0);
  profile_.state_writes.assign(nvars, 0);
  profile_.block_var_access.assign(nblocks, std::vector<uint64_t>(nvars, 0));
}

void NfInstance::RecordStateRead(int sym, int block, uint64_t n) {
  profile_.state_reads[sym] += n;
  if (block >= 0) {
    profile_.block_var_access[block][sym] += n;
  }
}

void NfInstance::RecordStateWrite(int sym, int block, uint64_t n) {
  profile_.state_writes[sym] += n;
  if (block >= 0) {
    profile_.block_var_access[block][sym] += n;
  }
}

uint64_t NfInstance::ReadPacketField(const std::string& name) const {
  const Packet& p = *pkt_;
  if (name == "eth.type") return p.eth_type;
  if (name == "ip.ihl") return p.ip_ihl;
  if (name == "ip.tos") return p.ip_tos;
  if (name == "ip.len") return p.ip_len;
  if (name == "ip.ttl") return p.ip_ttl;
  if (name == "ip.proto") return p.ip_proto;
  if (name == "ip.csum") return p.ip_checksum;
  if (name == "ip.src") return p.src_ip;
  if (name == "ip.dst") return p.dst_ip;
  if (name == "tcp.sport") return p.sport;
  if (name == "tcp.dport") return p.dport;
  if (name == "tcp.seq") return p.tcp_seq;
  if (name == "tcp.ack") return p.tcp_ack;
  if (name == "tcp.off") return p.tcp_off;
  if (name == "tcp.flags") return p.tcp_flags;
  if (name == "tcp.csum") return p.l4_checksum;
  if (name == "pkt.len") return p.wire_len;
  if (name == "pkt.payload_len") return p.payload_len;
  if (name == "pkt.in_port") return p.in_port;
  if (name == "pkt.ts") return p.ts_ns;
  return 0;
}

void NfInstance::WritePacketField(const std::string& name, uint64_t v) {
  Packet& p = *pkt_;
  if (name == "eth.type") { p.eth_type = static_cast<uint16_t>(v); return; }
  if (name == "ip.ihl") { p.ip_ihl = static_cast<uint8_t>(v); return; }
  if (name == "ip.tos") { p.ip_tos = static_cast<uint8_t>(v); return; }
  if (name == "ip.len") { p.ip_len = static_cast<uint16_t>(v); return; }
  if (name == "ip.ttl") { p.ip_ttl = static_cast<uint8_t>(v); return; }
  if (name == "ip.proto") { p.ip_proto = static_cast<uint8_t>(v); return; }
  if (name == "ip.csum") { p.ip_checksum = static_cast<uint16_t>(v); return; }
  if (name == "ip.src") { p.src_ip = static_cast<uint32_t>(v); return; }
  if (name == "ip.dst") { p.dst_ip = static_cast<uint32_t>(v); return; }
  if (name == "tcp.sport") { p.sport = static_cast<uint16_t>(v); return; }
  if (name == "tcp.dport") { p.dport = static_cast<uint16_t>(v); return; }
  if (name == "tcp.seq") { p.tcp_seq = static_cast<uint32_t>(v); return; }
  if (name == "tcp.ack") { p.tcp_ack = static_cast<uint32_t>(v); return; }
  if (name == "tcp.off") { p.tcp_off = static_cast<uint8_t>(v); return; }
  if (name == "tcp.flags") { p.tcp_flags = static_cast<uint8_t>(v); return; }
  if (name == "tcp.csum") { p.l4_checksum = static_cast<uint16_t>(v); return; }
  if (name == "pkt.in_port") { p.in_port = static_cast<uint16_t>(v); return; }
}

uint64_t NfInstance::CallApi(const std::string& name, const std::vector<uint64_t>& args,
                             int block) {
  ++profile_.api_calls[name];
  if (obs::Enabled() && obs_api_calls_ != nullptr) {
    obs_api_calls_->Add(1);
    if (obs_drops_ != nullptr && name == "drop") {
      obs_drops_->Add(1);
    }
  }
  Packet& p = *pkt_;
  if (name == "ip_header" || name == "tcp_header" || name == "udp_header" ||
      name == "payload") {
    return 0;
  }
  if (name == "checksum_update" || name == "csum_hw") {
    p.ip_checksum = Ipv4HeaderChecksum(p);
    return p.ip_checksum;
  }
  if (name == "send") {
    p.verdict = Packet::Verdict::kSent;
    p.out_port = args.empty() ? 0 : static_cast<uint16_t>(args[0]);
    ++profile_.sends;
    return 0;
  }
  if (name == "drop") {
    p.verdict = Packet::Verdict::kDropped;
    ++profile_.drops;
    return 0;
  }
  if (name == "crc_hash_hw") {
    uint64_t key = args.empty() ? 0 : args[0];
    uint8_t bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<uint8_t>(key >> (8 * i));
    }
    return Crc32Bitwise(bytes, 8);
  }
  if (name == "crc32_hw") {
    int len = p.PayloadPrefixLen();
    if (!args.empty() && args[0] < static_cast<uint64_t>(len)) {
      len = static_cast<int>(args[0]);
    }
    return Crc32Bitwise(p.payload.data(), static_cast<size_t>(len));
  }
  if (name == "lpm_hw") {
    if (lpm_accel_ != nullptr && !args.empty()) {
      auto hop = lpm_accel_->Lookup(static_cast<uint32_t>(args[0]));
      return hop.has_value() ? *hop + 1 : 0;
    }
    return 0;
  }
  if (name == "flow_cache_get") {
    auto it = flow_cache_.find(args.empty() ? 0 : args[0]);
    return it == flow_cache_.end() ? 0 : it->second + 1;
  }
  if (name == "flow_cache_put") {
    if (args.size() >= 2) {
      flow_cache_[args[0]] = args[1];
    }
    return 0;
  }
  if (name == "rand") {
    return rng_.NextU64() & 0xffffffffULL;
  }
  return 0;
}

uint64_t NfInstance::EvalExpr(const Expr& e, int block) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      return Mask(e.value, e.type);
    case ExprKind::kLocal: {
      int slot = -1;
      const auto& slots = module_.functions[0].slots;
      for (size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].name == e.name) {
          slot = static_cast<int>(i);
          break;
        }
      }
      return slot >= 0 ? locals_[slot] : 0;
    }
    case ExprKind::kStateScalar: {
      int sym = module_.FindState(e.name);
      RecordStateRead(sym, block);
      return Mask(arrays_[sym][0], e.type);
    }
    case ExprKind::kStateArray: {
      int sym = module_.FindState(e.name);
      uint64_t idx = EvalExpr(*e.args[0], block);
      RecordStateRead(sym, block);
      const auto& arr = arrays_[sym];
      return arr.empty() ? 0 : Mask(arr[idx % arr.size()], e.type);
    }
    case ExprKind::kPacketField:
      return Mask(ReadPacketField(e.name), e.type);
    case ExprKind::kPayloadByte: {
      uint64_t idx = EvalExpr(*e.args[0], block);
      return pkt_->payload[idx % kMaxPayloadPrefix];
    }
    case ExprKind::kBinary: {
      uint64_t a = EvalExpr(*e.args[0], block);
      uint64_t b = EvalExpr(*e.args[1], block);
      uint64_t r = 0;
      int w = BitWidth(e.type);
      switch (e.op) {
        case Opcode::kAdd: r = a + b; break;
        case Opcode::kSub: r = a - b; break;
        case Opcode::kMul: r = a * b; break;
        case Opcode::kUDiv: r = b == 0 ? 0 : a / b; break;
        case Opcode::kURem: r = b == 0 ? 0 : a % b; break;
        case Opcode::kAnd: r = a & b; break;
        case Opcode::kOr: r = a | b; break;
        case Opcode::kXor: r = a ^ b; break;
        case Opcode::kShl: r = a << (b & (w - 1)); break;
        case Opcode::kLShr: r = a >> (b & (w - 1)); break;
        case Opcode::kAShr: {
          // Arithmetic shift within the type width.
          uint64_t sign_bit = 1ULL << (w - 1);
          uint64_t sa = b & (w - 1);
          r = a >> sa;
          if (a & sign_bit) {
            r |= ~((1ULL << (w - static_cast<int>(sa))) - 1);
          }
          break;
        }
        default: r = 0; break;
      }
      return Mask(r, e.type);
    }
    case ExprKind::kCompare: {
      uint64_t a = EvalExpr(*e.args[0], block);
      uint64_t b = EvalExpr(*e.args[1], block);
      switch (e.op) {
        case Opcode::kIcmpEq: return a == b;
        case Opcode::kIcmpNe: return a != b;
        case Opcode::kIcmpUlt: return a < b;
        case Opcode::kIcmpUle: return a <= b;
        case Opcode::kIcmpUgt: return a > b;
        case Opcode::kIcmpUge: return a >= b;
        default: return 0;
      }
    }
    case ExprKind::kCast:
      return Mask(EvalExpr(*e.args[0], block), e.type);
    case ExprKind::kCall: {
      std::vector<uint64_t> args;
      for (const auto& a : e.args) {
        args.push_back(EvalExpr(*a, block));
      }
      return Mask(CallApi(e.callee, args, block), e.type);
    }
  }
  return 0;
}

void NfInstance::AttributeMapOp(const Stmt& s, const SimMap::OpResult& r, size_t nkeys,
                                size_t value_reads, size_t value_writes, int sym) {
  auto bump = [this](int block, uint64_t n) {
    if (block >= 0 && n > 0) {
      profile_.block_exec[block] += n;
    }
  };
  bump(s.block_cond, r.probes + (r.exhausted ? 1 : 0));
  bump(s.block_body, r.probes);
  // echk runs on every probe that did not match (a hit skips it once).
  uint64_t early_hit = (r.found && !r.exhausted) ? 1 : 0;
  bump(s.block_echk, r.probes >= early_hit ? r.probes - early_hit : 0);
  bump(s.block_latch, r.continues);
  bump(s.block_hit, r.found ? 1 : 0);
  bump(s.block_miss, r.found ? 0 : 1);

  // Probe-loop key loads.
  if (s.block_body >= 0) {
    RecordStateRead(sym, s.block_body, static_cast<uint64_t>(r.probes) * nkeys);
  }
  if (r.found) {
    if (value_reads > 0) {
      RecordStateRead(sym, s.block_hit, value_reads);
    }
    if (value_writes > 0) {
      RecordStateWrite(sym, s.block_hit, value_writes);
    }
  }
}

NfInstance::Flow NfInstance::ExecBody(std::vector<StmtPtr>& body) {
  for (auto& s : body) {
    if (ExecStmt(*s) == Flow::kReturned) {
      return Flow::kReturned;
    }
  }
  return Flow::kNormal;
}

NfInstance::Flow NfInstance::ExecStmt(Stmt& s) {
  if (s.block_entry && s.block >= 0) {
    ++profile_.block_exec[s.block];
  }
  switch (s.kind) {
    case StmtKind::kDecl:
    case StmtKind::kAssignLocal: {
      uint64_t v = EvalExpr(*s.e0, s.block);
      const auto& slots = module_.functions[0].slots;
      for (size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].name == s.name) {
          locals_[i] = Mask(v, slots[i].type);
          break;
        }
      }
      return Flow::kNormal;
    }
    case StmtKind::kAssignState: {
      int sym = module_.FindState(s.name);
      uint64_t v = EvalExpr(*s.e0, s.block);
      arrays_[sym][0] = Mask(v, module_.state[sym].elem_type);
      RecordStateWrite(sym, s.block);
      return Flow::kNormal;
    }
    case StmtKind::kAssignStateArr: {
      int sym = module_.FindState(s.name);
      uint64_t idx = EvalExpr(*s.e1, s.block);
      uint64_t v = EvalExpr(*s.e0, s.block);
      auto& arr = arrays_[sym];
      if (!arr.empty()) {
        arr[idx % arr.size()] = Mask(v, module_.state[sym].elem_type);
      }
      RecordStateWrite(sym, s.block);
      return Flow::kNormal;
    }
    case StmtKind::kAssignPacket: {
      uint64_t v = EvalExpr(*s.e0, s.block);
      WritePacketField(s.name, v);
      return Flow::kNormal;
    }
    case StmtKind::kAssignPayload: {
      uint64_t idx = EvalExpr(*s.e1, s.block);
      uint64_t v = EvalExpr(*s.e0, s.block);
      pkt_->payload[idx % kMaxPayloadPrefix] = static_cast<uint8_t>(v);
      return Flow::kNormal;
    }
    case StmtKind::kIf: {
      uint64_t c = EvalExpr(*s.e0, s.block);
      return c != 0 ? ExecBody(s.body) : ExecBody(s.else_body);
    }
    case StmtKind::kFor: {
      const auto& slots = module_.functions[0].slots;
      int var = -1;
      for (size_t i = 0; i < slots.size(); ++i) {
        if (slots[i].name == s.name) {
          var = static_cast<int>(i);
          break;
        }
      }
      uint64_t lo = EvalExpr(*s.e0, s.block);
      uint64_t iters = 0;
      locals_[var] = Mask(lo, Type::kI32);
      while (true) {
        if (s.block_cond >= 0) {
          ++profile_.block_exec[s.block_cond];
        }
        uint64_t hi = EvalExpr(*s.e1, s.block_cond);
        if (locals_[var] >= hi) {
          break;
        }
        Flow f = ExecBody(s.body);
        if (f == Flow::kReturned) {
          return f;
        }
        if (s.block_latch >= 0) {
          ++profile_.block_exec[s.block_latch];
        }
        locals_[var] = Mask(locals_[var] + 1, Type::kI32);
        ++iters;
        if (iters > 1u << 16) {
          break;  // runaway-loop backstop (NF loops are small by construction)
        }
      }
      return Flow::kNormal;
    }
    case StmtKind::kMapFind: {
      int sym = module_.FindState(s.name);
      SimMap& m = *maps_[sym];
      const StateDecl& d = *program_.FindState(s.name);
      std::vector<uint64_t> keys;
      for (size_t i = 0; i < d.key_fields.size(); ++i) {
        keys.push_back(Mask(EvalExpr(*s.args[i], s.block), d.key_fields[i]));
      }
      std::vector<uint64_t> values;
      auto r = m.Find(keys, &values);
      AttributeMapOp(s, r, keys.size(), s.outs.size(), 0, sym);
      const auto& slots = module_.functions[0].slots;
      auto set_local = [&](const std::string& name, uint64_t v) {
        for (size_t i = 0; i < slots.size(); ++i) {
          if (slots[i].name == name) {
            locals_[i] = Mask(v, slots[i].type);
            return;
          }
        }
      };
      if (r.found) {
        for (size_t j = 0; j < s.outs.size(); ++j) {
          set_local(s.outs[j], values[j]);
        }
      }
      if (!s.found_local.empty()) {
        set_local(s.found_local, r.found ? 1 : 0);
      }
      return Flow::kNormal;
    }
    case StmtKind::kMapInsert: {
      int sym = module_.FindState(s.name);
      SimMap& m = *maps_[sym];
      const StateDecl& d = *program_.FindState(s.name);
      size_t nkeys = d.key_fields.size();
      std::vector<uint64_t> keys;
      std::vector<uint64_t> values;
      for (size_t i = 0; i < nkeys; ++i) {
        keys.push_back(Mask(EvalExpr(*s.args[i], s.block), d.key_fields[i]));
      }
      for (size_t j = 0; j < d.value_fields.size(); ++j) {
        values.push_back(Mask(EvalExpr(*s.args[nkeys + j], s.block), d.value_fields[j].type));
      }
      auto r = m.Insert(keys, values);
      AttributeMapOp(s, r, nkeys, 0, nkeys + values.size(), sym);
      return Flow::kNormal;
    }
    case StmtKind::kMapErase: {
      int sym = module_.FindState(s.name);
      SimMap& m = *maps_[sym];
      const StateDecl& d = *program_.FindState(s.name);
      std::vector<uint64_t> keys;
      for (size_t i = 0; i < d.key_fields.size(); ++i) {
        keys.push_back(Mask(EvalExpr(*s.args[i], s.block), d.key_fields[i]));
      }
      auto r = m.Erase(keys);
      AttributeMapOp(s, r, keys.size(), 0, r.found ? 1 : 0, sym);
      return Flow::kNormal;
    }
    case StmtKind::kApiCall: {
      std::vector<uint64_t> args;
      for (const auto& a : s.args) {
        args.push_back(EvalExpr(*a, s.block));
      }
      CallApi(s.callee, args, s.block);
      return Flow::kNormal;
    }
    case StmtKind::kSend: {
      std::vector<uint64_t> args;
      if (s.e0) {
        args.push_back(EvalExpr(*s.e0, s.block));
      }
      CallApi("send", args, s.block);
      return Flow::kReturned;
    }
    case StmtKind::kDrop:
      CallApi("drop", {}, s.block);
      return Flow::kReturned;
    case StmtKind::kReturn:
      return Flow::kReturned;
  }
  return Flow::kNormal;
}

void NfInstance::Process(Packet& pkt) {
  assert(ok_);
  pkt_ = &pkt;
  ++profile_.packets;
  if (obs::Enabled()) {
    if (obs_packets_ == nullptr) {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      std::string base = "lang.interp." + module_.name;
      obs_packets_ = &reg.GetCounter(base + ".packets");
      obs_api_calls_ = &reg.GetCounter(base + ".api_calls");
      obs_drops_ = &reg.GetCounter(base + ".drops");
    }
    obs_packets_->Add(1);
  }
  std::fill(locals_.begin(), locals_.end(), 0);
  ExecBody(program_.body);
  if (pkt.verdict == Packet::Verdict::kPending) {
    pkt.verdict = Packet::Verdict::kSent;  // default: pass through
  }
  pkt_ = nullptr;
}

uint64_t NfInstance::ReadScalar(const std::string& name) const {
  int sym = module_.FindState(name);
  return sym >= 0 ? arrays_[sym][0] : 0;
}

uint64_t NfInstance::ReadArray(const std::string& name, size_t index) const {
  int sym = module_.FindState(name);
  if (sym < 0 || arrays_[sym].empty()) {
    return 0;
  }
  return arrays_[sym][index % arrays_[sym].size()];
}

SimMap* NfInstance::FindMap(const std::string& name) {
  int sym = module_.FindState(name);
  return sym >= 0 ? maps_[sym].get() : nullptr;
}

}  // namespace clara
