// Type checking and name resolution for NF programs. Fills in Expr::type for
// every expression and produces the function-scoped local-variable table that
// lowering turns into IR stack slots.
#ifndef SRC_LANG_CHECK_H_
#define SRC_LANG_CHECK_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"

namespace clara {

struct LocalInfo {
  std::string name;
  Type type;
};

struct CheckResult {
  bool ok = false;
  std::vector<std::string> errors;
  std::vector<LocalInfo> locals;  // in first-declaration order
};

// Checks `p` in place (assigns expression types). Loop variables and map-find
// destinations are implicitly declared if absent.
CheckResult CheckProgram(Program& p);

}  // namespace clara

#endif  // SRC_LANG_CHECK_H_
