// Recursive-descent parser for the mini-Click surface syntax emitted by
// ToSource (src/lang/printer.h) — the inverse of the printer, up to the
// information the surface syntax carries (map key/value geometry is kept as
// byte totals, so a parsed map re-prints identically but its fields are
// re-derived greedily).
//
// The serving daemon (src/serve/) accepts inline mini-Click source in
// requests; this parser turns it back into a Program, with structured errors
// (line-numbered, never throwing) for malformed input. Parsed programs are
// still subject to CheckProgram (src/lang/check.h) before analysis.
#ifndef SRC_LANG_PARSE_H_
#define SRC_LANG_PARSE_H_

#include <string>
#include <string_view>

#include "src/lang/ast.h"

namespace clara {

struct ParseResult {
  bool ok = false;
  Program program;
  std::string error;  // first failure, with a 1-based line number
};

ParseResult ParseProgram(std::string_view source);

}  // namespace clara

#endif  // SRC_LANG_PARSE_H_
