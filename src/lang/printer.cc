#include "src/lang/printer.h"

#include <sstream>

namespace clara {
namespace {

const char* TypeWord(Type t) {
  switch (t) {
    case Type::kI1: return "bool";
    case Type::kI8: return "u8";
    case Type::kI16: return "u16";
    case Type::kI32: return "u32";
    case Type::kI64: return "u64";
    default: return "void";
  }
}

const char* OpSym(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "+";
    case Opcode::kSub: return "-";
    case Opcode::kMul: return "*";
    case Opcode::kUDiv: return "/";
    case Opcode::kURem: return "%";
    case Opcode::kAnd: return "&";
    case Opcode::kOr: return "|";
    case Opcode::kXor: return "^";
    case Opcode::kShl: return "<<";
    case Opcode::kLShr: return ">>";
    case Opcode::kAShr: return ">>";
    case Opcode::kIcmpEq: return "==";
    case Opcode::kIcmpNe: return "!=";
    case Opcode::kIcmpUlt: return "<";
    case Opcode::kIcmpUle: return "<=";
    case Opcode::kIcmpUgt: return ">";
    case Opcode::kIcmpUge: return ">=";
    default: return "?";
  }
}

class Printer {
 public:
  explicit Printer(const Program& p) : p_(p) {}

  std::string Run() {
    os_ << "class " << p_.name << " : public Element {\n";
    for (const auto& s : p_.state) {
      Indent(1);
      switch (s.kind) {
        case StateKind::kScalar:
          os_ << TypeWord(s.elem_type) << " " << s.name << ";\n";
          break;
        case StateKind::kArray:
          os_ << TypeWord(s.elem_type) << " " << s.name << "[" << s.length << "];\n";
          break;
        case StateKind::kMap:
          os_ << (s.impl == MapImpl::kHostLinearProbe ? "HashMap" : "NicHashMap") << "<key"
              << s.KeyBytes() << ", value" << s.ValueBytes() << "> " << s.name << "; // cap "
              << s.capacity << "\n";
          break;
      }
    }
    Indent(1);
    os_ << "void simple_action(Packet* pkt) {\n";
    PrintBody(p_.body, 2);
    Indent(1);
    os_ << "}\n};\n";
    return os_.str();
  }

 private:
  void Indent(int n) {
    for (int i = 0; i < n; ++i) {
      os_ << "  ";
    }
  }

  std::string ExprStr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return std::to_string(e.value);
      case ExprKind::kLocal:
        return e.name;
      case ExprKind::kStateScalar:
        return e.name;
      case ExprKind::kStateArray:
        return e.name + "[" + ExprStr(*e.args[0]) + "]";
      case ExprKind::kPacketField:
        return "pkt->" + e.name;
      case ExprKind::kPayloadByte:
        return "pkt->payload[" + ExprStr(*e.args[0]) + "]";
      case ExprKind::kBinary:
      case ExprKind::kCompare:
        return "(" + ExprStr(*e.args[0]) + " " + OpSym(e.op) + " " + ExprStr(*e.args[1]) + ")";
      case ExprKind::kCast:
        return std::string("(") + TypeWord(e.type) + ")" + ExprStr(*e.args[0]);
      case ExprKind::kCall: {
        std::string s = e.callee + "(";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) {
            s += ", ";
          }
          s += ExprStr(*e.args[i]);
        }
        return s + ")";
      }
    }
    return "?";
  }

  void PrintBody(const std::vector<StmtPtr>& body, int depth) {
    for (const auto& s : body) {
      PrintStmt(*s, depth);
    }
  }

  void PrintStmt(const Stmt& s, int d) {
    Indent(d);
    switch (s.kind) {
      case StmtKind::kDecl:
        os_ << TypeWord(s.type) << " " << s.name << " = " << ExprStr(*s.e0) << ";\n";
        break;
      case StmtKind::kAssignLocal:
        os_ << s.name << " = " << ExprStr(*s.e0) << ";\n";
        break;
      case StmtKind::kAssignState:
        os_ << s.name << " = " << ExprStr(*s.e0) << ";\n";
        break;
      case StmtKind::kAssignStateArr:
        os_ << s.name << "[" << ExprStr(*s.e1) << "] = " << ExprStr(*s.e0) << ";\n";
        break;
      case StmtKind::kAssignPacket:
        os_ << "pkt->" << s.name << " = " << ExprStr(*s.e0) << ";\n";
        break;
      case StmtKind::kAssignPayload:
        os_ << "pkt->payload[" << ExprStr(*s.e1) << "] = " << ExprStr(*s.e0) << ";\n";
        break;
      case StmtKind::kIf:
        os_ << "if " << ExprStr(*s.e0) << " {\n";
        PrintBody(s.body, d + 1);
        if (!s.else_body.empty()) {
          Indent(d);
          os_ << "} else {\n";
          PrintBody(s.else_body, d + 1);
        }
        Indent(d);
        os_ << "}\n";
        break;
      case StmtKind::kFor:
        os_ << "for (" << s.name << " = " << ExprStr(*s.e0) << "; " << s.name << " < "
            << ExprStr(*s.e1) << "; ++" << s.name << ") {\n";
        PrintBody(s.body, d + 1);
        Indent(d);
        os_ << "}\n";
        break;
      case StmtKind::kMapFind: {
        os_ << s.found_local << " = " << s.name << ".find(";
        for (size_t i = 0; i < s.args.size(); ++i) {
          os_ << (i > 0 ? ", " : "") << ExprStr(*s.args[i]);
        }
        os_ << ")";
        if (!s.outs.empty()) {
          os_ << " -> {";
          for (size_t i = 0; i < s.outs.size(); ++i) {
            os_ << (i > 0 ? ", " : "") << s.outs[i];
          }
          os_ << "}";
        }
        os_ << ";\n";
        break;
      }
      case StmtKind::kMapInsert: {
        os_ << s.name << ".insert(";
        for (size_t i = 0; i < s.args.size(); ++i) {
          os_ << (i > 0 ? ", " : "") << ExprStr(*s.args[i]);
        }
        os_ << ");\n";
        break;
      }
      case StmtKind::kMapErase: {
        os_ << s.name << ".erase(";
        for (size_t i = 0; i < s.args.size(); ++i) {
          os_ << (i > 0 ? ", " : "") << ExprStr(*s.args[i]);
        }
        os_ << ");\n";
        break;
      }
      case StmtKind::kApiCall: {
        os_ << s.callee << "(";
        for (size_t i = 0; i < s.args.size(); ++i) {
          os_ << (i > 0 ? ", " : "") << ExprStr(*s.args[i]);
        }
        os_ << ");\n";
        break;
      }
      case StmtKind::kSend:
        os_ << "pkt->send(" << (s.e0 ? ExprStr(*s.e0) : "") << ");\n";
        break;
      case StmtKind::kDrop:
        os_ << "pkt->kill();\n";
        break;
      case StmtKind::kReturn:
        os_ << "return;\n";
        break;
    }
  }

  const Program& p_;
  std::ostringstream os_;
};

}  // namespace

std::string ToSource(const Program& p) { return Printer(p).Run(); }

int SourceLineCount(const Program& p) {
  std::string src = ToSource(p);
  int lines = 0;
  bool nonempty = false;
  for (char c : src) {
    if (c == '\n') {
      if (nonempty) {
        ++lines;
      }
      nonempty = false;
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      nonempty = true;
    }
  }
  return lines;
}

}  // namespace clara
