#include "src/lang/check.h"

#include <map>

namespace clara {
namespace {

// The standard packet-field table is defined in IR; reuse it for lookups.
const std::vector<PacketFieldInfo>& StandardFields() {
  static const std::vector<PacketFieldInfo> fields = [] {
    Module m;
    InstallStandardPacketFields(m);
    return m.packet_fields;
  }();
  return fields;
}

class Checker {
 public:
  explicit Checker(Program& p) : p_(p) {}

  CheckResult Run() {
    CheckResult r;
    for (auto& s : p_.body) {
      CheckStmt(*s);
    }
    r.errors = std::move(errors_);
    r.ok = r.errors.empty();
    for (const auto& name : local_order_) {
      r.locals.push_back(LocalInfo{name, locals_.at(name)});
    }
    return r;
  }

 private:
  void Error(const std::string& msg) { errors_.push_back(msg); }

  void DeclareLocal(const std::string& name, Type t) {
    if (locals_.find(name) == locals_.end()) {
      locals_[name] = t;
      local_order_.push_back(name);
    }
  }

  Type LocalType(const std::string& name) {
    auto it = locals_.find(name);
    if (it == locals_.end()) {
      Error("use of undeclared local '" + name + "'");
      DeclareLocal(name, Type::kI32);
      return Type::kI32;
    }
    return it->second;
  }

  const StateDecl* State(const std::string& name, StateKind want) {
    const StateDecl* s = p_.FindState(name);
    if (s == nullptr) {
      Error("unknown state '" + name + "'");
      return nullptr;
    }
    if (s->kind != want) {
      Error("state '" + name + "' has wrong kind for this operation");
      return nullptr;
    }
    return s;
  }

  Type CheckExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return e.type;
      case ExprKind::kLocal:
        e.type = LocalType(e.name);
        return e.type;
      case ExprKind::kStateScalar: {
        const StateDecl* s = State(e.name, StateKind::kScalar);
        e.type = s != nullptr ? s->elem_type : Type::kI32;
        return e.type;
      }
      case ExprKind::kStateArray: {
        const StateDecl* s = State(e.name, StateKind::kArray);
        CheckExpr(*e.args[0]);
        e.type = s != nullptr ? s->elem_type : Type::kI32;
        return e.type;
      }
      case ExprKind::kPacketField: {
        for (const auto& f : StandardFields()) {
          if (f.name == e.name) {
            e.type = f.type;
            return e.type;
          }
        }
        Error("unknown packet field '" + e.name + "'");
        e.type = Type::kI32;
        return e.type;
      }
      case ExprKind::kPayloadByte:
        CheckExpr(*e.args[0]);
        e.type = Type::kI8;
        return e.type;
      case ExprKind::kBinary: {
        Type a = CheckExpr(*e.args[0]);
        Type b = CheckExpr(*e.args[1]);
        e.type = BitWidth(a) >= BitWidth(b) ? a : b;
        if (e.type == Type::kI1) {
          e.type = Type::kI8;
        }
        return e.type;
      }
      case ExprKind::kCompare:
        CheckExpr(*e.args[0]);
        CheckExpr(*e.args[1]);
        e.type = Type::kI1;
        return e.type;
      case ExprKind::kCast:
        CheckExpr(*e.args[0]);
        return e.type;
      case ExprKind::kCall:
        for (auto& a : e.args) {
          CheckExpr(*a);
        }
        return e.type;
    }
    return Type::kI32;
  }

  void CheckBody(std::vector<StmtPtr>& body) {
    for (auto& s : body) {
      CheckStmt(*s);
    }
  }

  void CheckStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kDecl:
        if (s.e0) {
          CheckExpr(*s.e0);
        }
        DeclareLocal(s.name, s.type);
        break;
      case StmtKind::kAssignLocal:
        CheckExpr(*s.e0);
        LocalType(s.name);
        break;
      case StmtKind::kAssignState: {
        CheckExpr(*s.e0);
        State(s.name, StateKind::kScalar);
        break;
      }
      case StmtKind::kAssignStateArr:
        CheckExpr(*s.e0);
        CheckExpr(*s.e1);
        State(s.name, StateKind::kArray);
        break;
      case StmtKind::kAssignPacket: {
        CheckExpr(*s.e0);
        bool known = false;
        for (const auto& f : StandardFields()) {
          if (f.name == s.name) {
            known = true;
            break;
          }
        }
        if (!known) {
          Error("unknown packet field '" + s.name + "'");
        }
        break;
      }
      case StmtKind::kAssignPayload:
        CheckExpr(*s.e0);
        CheckExpr(*s.e1);
        break;
      case StmtKind::kIf:
        CheckExpr(*s.e0);
        CheckBody(s.body);
        CheckBody(s.else_body);
        break;
      case StmtKind::kFor:
        DeclareLocal(s.name, Type::kI32);
        CheckExpr(*s.e0);
        CheckExpr(*s.e1);
        CheckBody(s.body);
        break;
      case StmtKind::kMapFind: {
        const StateDecl* m = State(s.name, StateKind::kMap);
        for (auto& k : s.args) {
          CheckExpr(*k);
        }
        if (m != nullptr) {
          if (s.args.size() != m->key_fields.size()) {
            Error("map '" + s.name + "' find: wrong number of key fields");
          }
          if (s.outs.size() > m->value_fields.size()) {
            Error("map '" + s.name + "' find: too many output fields");
          }
          for (size_t i = 0; i < s.outs.size(); ++i) {
            DeclareLocal(s.outs[i], m->value_fields[i].type);
          }
        }
        if (!s.found_local.empty()) {
          DeclareLocal(s.found_local, Type::kI8);
        }
        break;
      }
      case StmtKind::kMapInsert: {
        const StateDecl* m = State(s.name, StateKind::kMap);
        for (auto& a : s.args) {
          CheckExpr(*a);
        }
        if (m != nullptr &&
            s.args.size() != m->key_fields.size() + m->value_fields.size()) {
          Error("map '" + s.name + "' insert: wrong number of fields");
        }
        break;
      }
      case StmtKind::kMapErase: {
        const StateDecl* m = State(s.name, StateKind::kMap);
        for (auto& a : s.args) {
          CheckExpr(*a);
        }
        if (m != nullptr && s.args.size() != m->key_fields.size()) {
          Error("map '" + s.name + "' erase: wrong number of key fields");
        }
        break;
      }
      case StmtKind::kApiCall:
        for (auto& a : s.args) {
          CheckExpr(*a);
        }
        break;
      case StmtKind::kSend:
        if (s.e0) {
          CheckExpr(*s.e0);
        }
        break;
      case StmtKind::kDrop:
      case StmtKind::kReturn:
        break;
    }
  }

  Program& p_;
  std::vector<std::string> errors_;
  std::map<std::string, Type> locals_;
  std::vector<std::string> local_order_;
};

}  // namespace

CheckResult CheckProgram(Program& p) { return Checker(p).Run(); }

}  // namespace clara
