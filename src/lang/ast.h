// Abstract syntax tree for Clara's mini-Click NF language.
//
// NF programs (the paper's "legacy NFs") are written as an element with
// global state declarations and a per-packet handler, mirroring Click's
// Element::simple_action. The same AST serves three purposes:
//   1. It is lowered to Clara IR (src/lang/lower.h) with optimizations off,
//      yielding the uniform representation of paper §3.1.
//   2. It is executed directly by the interpreter (src/lang/interp.h) for
//      trace-driven, workload-specific profiling (paper §4.3/§4.4).
//   3. It is the target of the program synthesizer (src/synth).
//
// Stateful map operations are not calls: lowering expands them inline with
// the control flow of the chosen implementation (host linear probing vs NIC
// fixed buckets) — the "reverse porting" of paper §3.3.
#ifndef SRC_LANG_AST_H_
#define SRC_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/ir.h"

namespace clara {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : uint8_t {
  kIntLit,       // value
  kLocal,        // name
  kStateScalar,  // name
  kStateArray,   // name, args[0] = index
  kPacketField,  // field (e.g. "ip.src")
  kPayloadByte,  // args[0] = byte index
  kBinary,       // op, args[0], args[1]
  kCompare,      // op (icmp.*), args[0], args[1]
  kCast,         // explicit width change, args[0]
  kCall,         // value-returning framework API, callee, args
};

struct Expr {
  ExprKind kind;
  Type type = Type::kI32;  // result width; set by the type checker
  uint64_t value = 0;      // kIntLit
  std::string name;        // local / state / packet field name
  Opcode op = Opcode::kAdd;
  std::string callee;
  std::vector<ExprPtr> args;
};

enum class StmtKind : uint8_t {
  kDecl,             // local decl with init: name, type, e0
  kAssignLocal,      // name, e0
  kAssignState,      // name, e0 (scalar)
  kAssignStateArr,   // name, e0 = value, e1 = index
  kAssignPacket,     // name = field name, e0
  kAssignPayload,    // e0 = value, e1 = byte index
  kIf,               // e0 = cond, body, else_body
  kFor,              // name = loop var, e0 = lo, e1 = hi (exclusive), body
  kMapFind,          // name = map; args = key exprs; outs = value-field locals;
                     //   found local receives 0/1
  kMapInsert,        // name = map; args = key exprs then value exprs
  kMapErase,         // name = map; args = key exprs
  kApiCall,          // void framework API: callee, args
  kSend,             // e0 = port (optional; default 0)
  kDrop,
  kReturn,
};

struct Stmt {
  StmtKind kind;
  std::string name;
  Type type = Type::kI32;
  ExprPtr e0;
  ExprPtr e1;
  std::vector<ExprPtr> args;
  std::vector<std::string> outs;  // kMapFind value-field destinations
  std::string found_local;        // kMapFind hit flag destination
  std::string callee;             // kApiCall
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;

  // Filled by lowering: the IR block this statement starts in, plus auxiliary
  // blocks for compound statements (see src/lang/lower.h for the roles).
  // Used by the interpreter to attribute profile counts to IR blocks.
  int block = -1;
  bool block_entry = false;  // this statement is the first lowered into `block`
  int block_cond = -1;
  int block_body = -1;
  int block_echk = -1;
  int block_latch = -1;
  int block_hit = -1;
  int block_miss = -1;
};

// Map implementation selected for lowering + interpretation (paper §3.3).
enum class MapImpl : uint8_t { kHostLinearProbe, kNicFixedBucket };

struct ValueField {
  std::string name;
  Type type;
};

struct StateDecl {
  std::string name;
  StateKind kind = StateKind::kScalar;
  Type elem_type = Type::kI32;
  uint32_t length = 1;  // array length
  // Map geometry.
  std::vector<Type> key_fields;
  std::vector<ValueField> value_fields;
  uint32_t capacity = 0;
  MapImpl impl = MapImpl::kNicFixedBucket;
  uint32_t slots_per_bucket = 4;
  // Initial array contents (e.g. a flattened LPM trie); optional.
  std::vector<uint64_t> init;

  uint32_t KeyBytes() const;
  uint32_t ValueBytes() const;
  uint64_t SizeBytes() const;
};

struct Program {
  std::string name;
  std::vector<StateDecl> state;
  std::vector<StmtPtr> body;  // the simple_action handler

  const StateDecl* FindState(const std::string& n) const;
};

// ---- Factory helpers (namespace-level, used by elements/synth/tests) ----

ExprPtr Lit(uint64_t v, Type t = Type::kI32);
ExprPtr Local(const std::string& name);
ExprPtr StateRef(const std::string& name);
ExprPtr StateAt(const std::string& name, ExprPtr index);
ExprPtr PktField(const std::string& field);
ExprPtr PayloadAt(ExprPtr index);
ExprPtr Bin(Opcode op, ExprPtr a, ExprPtr b);
ExprPtr Cmp(Opcode op, ExprPtr a, ExprPtr b);
ExprPtr CastTo(Type t, ExprPtr v);
ExprPtr CallExpr(const std::string& api, std::vector<ExprPtr> args, Type result);

StmtPtr Decl(const std::string& name, Type t, ExprPtr init);
StmtPtr Assign(const std::string& local, ExprPtr v);
StmtPtr AssignState(const std::string& state, ExprPtr v);
StmtPtr AssignStateAt(const std::string& state, ExprPtr index, ExprPtr v);
StmtPtr AssignPkt(const std::string& field, ExprPtr v);
StmtPtr AssignPayload(ExprPtr index, ExprPtr v);
StmtPtr If(ExprPtr cond, std::vector<StmtPtr> then_body, std::vector<StmtPtr> else_body = {});
StmtPtr For(const std::string& var, ExprPtr lo, ExprPtr hi, std::vector<StmtPtr> body);
StmtPtr MapFind(const std::string& map, std::vector<ExprPtr> keys, const std::string& found,
                std::vector<std::string> outs);
StmtPtr MapInsert(const std::string& map, std::vector<ExprPtr> keys,
                  std::vector<ExprPtr> values);
StmtPtr MapErase(const std::string& map, std::vector<ExprPtr> keys);
StmtPtr Api(const std::string& api, std::vector<ExprPtr> args = {});
StmtPtr Send(ExprPtr port = nullptr);
StmtPtr Drop();
StmtPtr Return();

// Deep copies (the synthesizer mutates program templates).
ExprPtr CloneExpr(const Expr& e);
StmtPtr CloneStmt(const Stmt& s);
Program CloneProgram(const Program& p);

}  // namespace clara

#endif  // SRC_LANG_AST_H_
