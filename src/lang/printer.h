// Pretty-printer: renders an NF program as pseudo-Click C++ source. Used for
// documentation/examples and to estimate source LoC for the Table 2 summary.
#ifndef SRC_LANG_PRINTER_H_
#define SRC_LANG_PRINTER_H_

#include <string>

#include "src/lang/ast.h"

namespace clara {

std::string ToSource(const Program& p);

// Number of non-empty lines ToSource would produce.
int SourceLineCount(const Program& p);

}  // namespace clara

#endif  // SRC_LANG_PRINTER_H_
