#include "src/lang/ast.h"

namespace clara {

uint32_t StateDecl::KeyBytes() const {
  uint32_t b = 0;
  for (Type t : key_fields) {
    b += static_cast<uint32_t>(BitWidth(t)) / 8;
  }
  return b;
}

uint32_t StateDecl::ValueBytes() const {
  uint32_t b = 0;
  for (const auto& f : value_fields) {
    b += static_cast<uint32_t>(BitWidth(f.type)) / 8;
  }
  return b;
}

uint64_t StateDecl::SizeBytes() const {
  switch (kind) {
    case StateKind::kScalar:
      return static_cast<uint64_t>(BitWidth(elem_type)) / 8;
    case StateKind::kArray:
      return static_cast<uint64_t>(BitWidth(elem_type)) / 8 * length;
    case StateKind::kMap:
      return static_cast<uint64_t>(capacity) * (KeyBytes() + ValueBytes());
  }
  return 0;
}

const StateDecl* Program::FindState(const std::string& n) const {
  for (const auto& s : state) {
    if (s.name == n) {
      return &s;
    }
  }
  return nullptr;
}

ExprPtr Lit(uint64_t v, Type t) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->value = v;
  e->type = t;
  return e;
}

ExprPtr Local(const std::string& name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLocal;
  e->name = name;
  return e;
}

ExprPtr StateRef(const std::string& name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStateScalar;
  e->name = name;
  return e;
}

ExprPtr StateAt(const std::string& name, ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStateArray;
  e->name = name;
  e->args.push_back(std::move(index));
  return e;
}

ExprPtr PktField(const std::string& field) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kPacketField;
  e->name = field;
  return e;
}

ExprPtr PayloadAt(ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kPayloadByte;
  e->type = Type::kI8;
  e->args.push_back(std::move(index));
  return e;
}

ExprPtr Bin(Opcode op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

ExprPtr Cmp(Opcode op, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCompare;
  e->op = op;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

ExprPtr CastTo(Type t, ExprPtr v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCast;
  e->type = t;
  e->args.push_back(std::move(v));
  return e;
}

ExprPtr CallExpr(const std::string& api, std::vector<ExprPtr> args, Type result) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kCall;
  e->callee = api;
  e->type = result;
  e->args = std::move(args);
  return e;
}

namespace {

StmtPtr MakeStmt(StmtKind k) {
  auto s = std::make_unique<Stmt>();
  s->kind = k;
  return s;
}

}  // namespace

StmtPtr Decl(const std::string& name, Type t, ExprPtr init) {
  auto s = MakeStmt(StmtKind::kDecl);
  s->name = name;
  s->type = t;
  s->e0 = std::move(init);
  return s;
}

StmtPtr Assign(const std::string& local, ExprPtr v) {
  auto s = MakeStmt(StmtKind::kAssignLocal);
  s->name = local;
  s->e0 = std::move(v);
  return s;
}

StmtPtr AssignState(const std::string& state, ExprPtr v) {
  auto s = MakeStmt(StmtKind::kAssignState);
  s->name = state;
  s->e0 = std::move(v);
  return s;
}

StmtPtr AssignStateAt(const std::string& state, ExprPtr index, ExprPtr v) {
  auto s = MakeStmt(StmtKind::kAssignStateArr);
  s->name = state;
  s->e0 = std::move(v);
  s->e1 = std::move(index);
  return s;
}

StmtPtr AssignPkt(const std::string& field, ExprPtr v) {
  auto s = MakeStmt(StmtKind::kAssignPacket);
  s->name = field;
  s->e0 = std::move(v);
  return s;
}

StmtPtr AssignPayload(ExprPtr index, ExprPtr v) {
  auto s = MakeStmt(StmtKind::kAssignPayload);
  s->e0 = std::move(v);
  s->e1 = std::move(index);
  return s;
}

StmtPtr If(ExprPtr cond, std::vector<StmtPtr> then_body, std::vector<StmtPtr> else_body) {
  auto s = MakeStmt(StmtKind::kIf);
  s->e0 = std::move(cond);
  s->body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr For(const std::string& var, ExprPtr lo, ExprPtr hi, std::vector<StmtPtr> body) {
  auto s = MakeStmt(StmtKind::kFor);
  s->name = var;
  s->e0 = std::move(lo);
  s->e1 = std::move(hi);
  s->body = std::move(body);
  return s;
}

StmtPtr MapFind(const std::string& map, std::vector<ExprPtr> keys, const std::string& found,
                std::vector<std::string> outs) {
  auto s = MakeStmt(StmtKind::kMapFind);
  s->name = map;
  s->args = std::move(keys);
  s->found_local = found;
  s->outs = std::move(outs);
  return s;
}

StmtPtr MapInsert(const std::string& map, std::vector<ExprPtr> keys,
                  std::vector<ExprPtr> values) {
  auto s = MakeStmt(StmtKind::kMapInsert);
  s->name = map;
  s->args = std::move(keys);
  for (auto& v : values) {
    s->args.push_back(std::move(v));
  }
  return s;
}

StmtPtr MapErase(const std::string& map, std::vector<ExprPtr> keys) {
  auto s = MakeStmt(StmtKind::kMapErase);
  s->name = map;
  s->args = std::move(keys);
  return s;
}

StmtPtr Api(const std::string& api, std::vector<ExprPtr> args) {
  auto s = MakeStmt(StmtKind::kApiCall);
  s->callee = api;
  s->args = std::move(args);
  return s;
}

StmtPtr Send(ExprPtr port) {
  auto s = MakeStmt(StmtKind::kSend);
  s->e0 = std::move(port);
  return s;
}

StmtPtr Drop() { return MakeStmt(StmtKind::kDrop); }

StmtPtr Return() { return MakeStmt(StmtKind::kReturn); }

ExprPtr CloneExpr(const Expr& e) {
  auto c = std::make_unique<Expr>();
  c->kind = e.kind;
  c->type = e.type;
  c->value = e.value;
  c->name = e.name;
  c->op = e.op;
  c->callee = e.callee;
  for (const auto& a : e.args) {
    c->args.push_back(CloneExpr(*a));
  }
  return c;
}

StmtPtr CloneStmt(const Stmt& s) {
  auto c = std::make_unique<Stmt>();
  c->kind = s.kind;
  c->name = s.name;
  c->type = s.type;
  if (s.e0) {
    c->e0 = CloneExpr(*s.e0);
  }
  if (s.e1) {
    c->e1 = CloneExpr(*s.e1);
  }
  for (const auto& a : s.args) {
    c->args.push_back(CloneExpr(*a));
  }
  c->outs = s.outs;
  c->found_local = s.found_local;
  c->callee = s.callee;
  for (const auto& b : s.body) {
    c->body.push_back(CloneStmt(*b));
  }
  for (const auto& b : s.else_body) {
    c->else_body.push_back(CloneStmt(*b));
  }
  return c;
}

Program CloneProgram(const Program& p) {
  Program c;
  c.name = p.name;
  c.state = p.state;
  for (const auto& s : p.body) {
    c.body.push_back(CloneStmt(*s));
  }
  return c;
}

}  // namespace clara
