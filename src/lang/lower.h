// AST -> IR lowering with optimizations disabled (paper §3.1): every local
// variable stays a stack slot, so the IR faithfully reflects unoptimized
// source structure, and it is the NIC backend's job (src/nic/backend.h) to
// register-allocate — the compiler behaviour Clara's ML model learns.
//
// Stateful map operations are expanded inline with the control flow of the
// declared implementation (host linear probing vs NIC fixed-bucket), making
// the IR control-flow-symmetric with the interpreter's execution — the
// "reverse porting" property of paper §3.3. The lowering records, on each
// AST statement, which IR blocks it produced (entry/cond/body/echk/latch/
// hit/miss) so the interpreter can attribute per-block execution counts.
#ifndef SRC_LANG_LOWER_H_
#define SRC_LANG_LOWER_H_

#include <string>

#include "src/ir/ir.h"
#include "src/lang/ast.h"
#include "src/lang/check.h"

namespace clara {

struct LowerResult {
  bool ok = false;
  std::string error;
  Module module;  // one function: "simple_action"
};

// Blocks recorded on statements (see Stmt block fields):
//   block       — where the statement's lowering begins
//   block_cond  — loop/probe condition block
//   block_body  — probe body (key loads + match test)
//   block_echk  — empty-slot check
//   block_latch — loop/probe advance
//   block_hit   — map hit / insert-write continuation
//   block_miss  — map miss continuation
//
// Type-checks `p` first; lowering mutates the AST (expression types, block
// annotations).
LowerResult LowerProgram(Program& p);

// Maximum hash-map key fields supported by the probe expansion.
inline constexpr int kMaxMapKeyFields = 4;

// FNV-style fold over key field values; both the lowered IR and the
// interpreter's simulated maps use this bucket hash so control flow stays
// symmetric.
uint32_t MapFieldHash(const uint64_t* key_vals, size_t n);

}  // namespace clara

#endif  // SRC_LANG_LOWER_H_
