#include "src/lang/lower.h"

#include <map>
#include <optional>
#include <set>

#include "src/ir/builder.h"

namespace clara {

uint32_t MapFieldHash(const uint64_t* key_vals, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ static_cast<uint32_t>(key_vals[i])) * 16777619u;
  }
  return h;
}

namespace {

constexpr uint32_t kFnvBasis = 2166136261u;
constexpr uint32_t kFnvPrime = 16777619u;

// Byte offset of the i-th key field within a map slot.
int32_t KeyFieldOffset(const StateDecl& m, size_t i) {
  int32_t off = 0;
  for (size_t k = 0; k < i; ++k) {
    off += BitWidth(m.key_fields[k]) / 8;
  }
  return off;
}

// Byte offset of the j-th value field within a map slot.
int32_t ValueFieldOffset(const StateDecl& m, size_t j) {
  int32_t off = static_cast<int32_t>(m.KeyBytes());
  for (size_t k = 0; k < j; ++k) {
    off += BitWidth(m.value_fields[k].type) / 8;
  }
  return off;
}

class Lowerer {
 public:
  explicit Lowerer(Program& p) : p_(p) {}

  LowerResult Run() {
    LowerResult r;
    CheckResult chk = CheckProgram(p_);
    if (!chk.ok) {
      r.error = chk.errors.front();
      return r;
    }

    r.module.name = p_.name;
    InstallStandardPacketFields(r.module);
    for (const auto& sd : p_.state) {
      StateVar sv;
      sv.name = sd.name;
      sv.kind = sd.kind;
      sv.elem_type = sd.elem_type;
      sv.length = sd.length;
      if (sd.kind == StateKind::kMap) {
        sv.key_bytes = sd.KeyBytes();
        sv.value_bytes = sd.ValueBytes();
        sv.capacity = sd.capacity;
        // Backing-store slot count, mirroring SimMap: bucketed NIC maps round
        // capacity up to whole buckets; host maps probe the raw capacity.
        if (sd.impl == MapImpl::kNicFixedBucket) {
          uint32_t spb = sd.slots_per_bucket == 0 ? 1 : sd.slots_per_bucket;
          uint32_t buckets = (sd.capacity + spb - 1) / spb;
          if (buckets == 0) {
            buckets = 1;
          }
          sv.slots = buckets * spb;
        } else {
          sv.slots = sd.capacity == 0 ? 1 : sd.capacity;
        }
      }
      r.module.state.push_back(sv);
    }

    r.module.functions.emplace_back();
    Function& f = r.module.functions.back();
    f.name = "simple_action";
    builder_.emplace(r.module, f);
    IrBuilder& b = *builder_;

    for (const auto& l : chk.locals) {
      slot_by_name_[l.name] = b.AddSlot(l.name, l.type);
    }

    uint32_t entry = b.NewBlock("entry");
    b.SetInsertPoint(entry);
    LowerBody(p_.body);
    if (!b.BlockTerminated()) {
      b.Ret();
    }
    // Terminate any empty or unterminated synthetic blocks (e.g. unreachable
    // joins after returns in both branches).
    for (auto& blk : f.blocks) {
      if (blk.instrs.empty() || !IsTerminator(blk.instrs.back().op)) {
        Instruction ret;
        ret.op = Opcode::kRet;
        blk.instrs.push_back(ret);
      }
    }
    r.ok = true;
    return r;
  }

 private:
  IrBuilder& B() { return *builder_; }

  uint32_t Slot(const std::string& name) { return slot_by_name_.at(name); }

  uint32_t EnsureTempSlot(const std::string& name, Type t) {
    auto it = slot_by_name_.find(name);
    if (it != slot_by_name_.end()) {
      return it->second;
    }
    uint32_t s = B().AddSlot(name, t);
    slot_by_name_[name] = s;
    return s;
  }

  uint32_t NewBlock(const std::string& label) {
    return B().NewBlock(label + "." + std::to_string(block_seq_++));
  }

  // Emits zext/trunc so that a value of type `from` becomes type `to`.
  Value Coerce(Value v, Type from, Type to) {
    if (from == to || v.is_const()) {
      return v;
    }
    int wf = BitWidth(from);
    int wt = BitWidth(to);
    if (wf == wt) {
      return v;
    }
    return B().Cast(wf < wt ? Opcode::kZext : Opcode::kTrunc, to, v);
  }

  Value LowerExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        return Value::Const(static_cast<int64_t>(e.value));
      case ExprKind::kLocal:
        return B().LoadStack(Slot(e.name));
      case ExprKind::kStateScalar:
        return B().LoadState(static_cast<uint32_t>(B().module().FindState(e.name)), e.type);
      case ExprKind::kStateArray: {
        Value idx = LowerExpr(*e.args[0]);
        return B().LoadState(static_cast<uint32_t>(B().module().FindState(e.name)), e.type,
                             idx);
      }
      case ExprKind::kPacketField:
        return B().LoadPacket(static_cast<uint32_t>(B().module().FindPacketField(e.name)));
      case ExprKind::kPayloadByte: {
        Value idx = LowerExpr(*e.args[0]);
        return B().LoadPacket(
            static_cast<uint32_t>(B().module().FindPacketField("pkt.payload")), idx);
      }
      case ExprKind::kBinary: {
        Value a = Coerce(LowerExpr(*e.args[0]), e.args[0]->type, e.type);
        Value bv = Coerce(LowerExpr(*e.args[1]), e.args[1]->type, e.type);
        return B().Binary(e.op, e.type, a, bv);
      }
      case ExprKind::kCompare: {
        Type ct = BitWidth(e.args[0]->type) >= BitWidth(e.args[1]->type) ? e.args[0]->type
                                                                         : e.args[1]->type;
        Value a = Coerce(LowerExpr(*e.args[0]), e.args[0]->type, ct);
        Value bv = Coerce(LowerExpr(*e.args[1]), e.args[1]->type, ct);
        return B().Compare(e.op, a, bv);
      }
      case ExprKind::kCast:
        return Coerce(LowerExpr(*e.args[0]), e.args[0]->type, e.type);
      case ExprKind::kCall: {
        std::vector<Value> args;
        for (const auto& a : e.args) {
          args.push_back(LowerExpr(*a));
        }
        return B().Call(e.callee, std::move(args), e.type);
      }
    }
    return Value::Const(0);
  }

  // Lowers a condition to an i1 value.
  Value LowerCond(const Expr& e) {
    Value v = LowerExpr(e);
    if (e.kind == ExprKind::kCompare) {
      return v;
    }
    return B().Compare(Opcode::kIcmpNe, v, Value::Const(0));
  }

  void MarkEntry(Stmt& s) {
    s.block = static_cast<int>(B().insert_point());
    if (blocks_with_entry_.insert(s.block).second) {
      s.block_entry = true;
    }
  }

  void LowerBody(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) {
      if (B().BlockTerminated()) {
        // Unreachable statements after return/drop: still annotate them so
        // the interpreter has valid block ids, but they never execute.
        MarkEntry(*s);
        continue;
      }
      LowerStmt(*s);
    }
  }

  void LowerStmt(Stmt& s) {
    MarkEntry(s);
    switch (s.kind) {
      case StmtKind::kDecl:
      case StmtKind::kAssignLocal: {
        uint32_t slot = Slot(s.name);
        Type st = B().func().slots[slot].type;
        Value v = Coerce(LowerExpr(*s.e0), s.e0->type, st);
        B().StoreStack(slot, v);
        break;
      }
      case StmtKind::kAssignState: {
        int sym = B().module().FindState(s.name);
        Type st = B().module().state[sym].elem_type;
        Value v = Coerce(LowerExpr(*s.e0), s.e0->type, st);
        B().StoreState(static_cast<uint32_t>(sym), st, v);
        break;
      }
      case StmtKind::kAssignStateArr: {
        int sym = B().module().FindState(s.name);
        Type st = B().module().state[sym].elem_type;
        Value idx = LowerExpr(*s.e1);
        Value v = Coerce(LowerExpr(*s.e0), s.e0->type, st);
        B().StoreState(static_cast<uint32_t>(sym), st, v, idx);
        break;
      }
      case StmtKind::kAssignPacket: {
        int field = B().module().FindPacketField(s.name);
        Type ft = B().module().packet_fields[field].type;
        Value v = Coerce(LowerExpr(*s.e0), s.e0->type, ft);
        B().StorePacket(static_cast<uint32_t>(field), v);
        break;
      }
      case StmtKind::kAssignPayload: {
        int field = B().module().FindPacketField("pkt.payload");
        Value idx = LowerExpr(*s.e1);
        Value v = Coerce(LowerExpr(*s.e0), s.e0->type, Type::kI8);
        B().StorePacket(static_cast<uint32_t>(field), v, idx);
        break;
      }
      case StmtKind::kIf:
        LowerIf(s);
        break;
      case StmtKind::kFor:
        LowerFor(s);
        break;
      case StmtKind::kMapFind:
      case StmtKind::kMapInsert:
      case StmtKind::kMapErase:
        LowerMapOp(s);
        break;
      case StmtKind::kApiCall: {
        std::vector<Value> args;
        for (const auto& a : s.args) {
          args.push_back(LowerExpr(*a));
        }
        B().Call(s.callee, std::move(args), Type::kVoid);
        break;
      }
      case StmtKind::kSend: {
        Value port = s.e0 ? LowerExpr(*s.e0) : Value::Const(0);
        B().Call("send", {port}, Type::kVoid);
        B().Ret();
        break;
      }
      case StmtKind::kDrop:
        B().Call("drop", {}, Type::kVoid);
        B().Ret();
        break;
      case StmtKind::kReturn:
        B().Ret();
        break;
    }
  }

  void LowerIf(Stmt& s) {
    Value cond = LowerCond(*s.e0);
    uint32_t then_b = NewBlock("then");
    uint32_t join_b = NewBlock("join");
    uint32_t else_b = s.else_body.empty() ? join_b : NewBlock("else");
    B().CondBr(cond, then_b, else_b);

    B().SetInsertPoint(then_b);
    LowerBody(s.body);
    if (!B().BlockTerminated()) {
      B().Br(join_b);
    }
    if (!s.else_body.empty()) {
      B().SetInsertPoint(else_b);
      LowerBody(s.else_body);
      if (!B().BlockTerminated()) {
        B().Br(join_b);
      }
    }
    B().SetInsertPoint(join_b);
  }

  void LowerFor(Stmt& s) {
    uint32_t var = Slot(s.name);
    Value lo = Coerce(LowerExpr(*s.e0), s.e0->type, Type::kI32);
    B().StoreStack(var, lo);
    uint32_t cond_b = NewBlock("for.cond");
    uint32_t body_b = NewBlock("for.body");
    uint32_t latch_b = NewBlock("for.latch");
    uint32_t exit_b = NewBlock("for.exit");
    s.block_cond = static_cast<int>(cond_b);
    s.block_latch = static_cast<int>(latch_b);
    B().Br(cond_b);

    B().SetInsertPoint(cond_b);
    Value i = B().LoadStack(var);
    Value hi = Coerce(LowerExpr(*s.e1), s.e1->type, Type::kI32);
    Value c = B().Compare(Opcode::kIcmpUlt, i, hi);
    B().CondBr(c, body_b, exit_b);

    B().SetInsertPoint(body_b);
    LowerBody(s.body);
    if (!B().BlockTerminated()) {
      B().Br(latch_b);
    }

    B().SetInsertPoint(latch_b);
    Value iv = B().LoadStack(var);
    Value inc = B().Binary(Opcode::kAdd, Type::kI32, iv, Value::Const(1));
    B().StoreStack(var, inc);
    B().Br(cond_b);

    B().SetInsertPoint(exit_b);
  }

  // Expands map find/insert/erase into an explicit bounded probe loop with
  // the control flow of the declared implementation. See lower.h for the
  // block roles.
  void LowerMapOp(Stmt& s) {
    const StateDecl& m = *p_.FindState(s.name);
    uint32_t sym = static_cast<uint32_t>(B().module().FindState(s.name));
    size_t nkeys = m.key_fields.size();
    bool nic = m.impl == MapImpl::kNicFixedBucket;
    uint32_t spb = m.slots_per_bucket == 0 ? 1 : m.slots_per_bucket;
    uint32_t buckets = nic ? (m.capacity + spb - 1) / spb : 0;
    uint32_t bound = nic ? spb : m.capacity;

    // Shared temporaries.
    uint32_t t_h = EnsureTempSlot("__h", Type::kI32);
    uint32_t t_idx = EnsureTempSlot("__idx", Type::kI32);
    uint32_t t_n = EnsureTempSlot("__n", Type::kI32);
    uint32_t t_k0 = EnsureTempSlot("__probek0", Type::kI64);
    std::vector<uint32_t> t_keys;
    for (size_t i = 0; i < nkeys; ++i) {
      t_keys.push_back(EnsureTempSlot("__key" + std::to_string(i), Type::kI64));
    }

    // Entry: evaluate keys into temps, hash, compute the start index.
    for (size_t i = 0; i < nkeys; ++i) {
      Value k = Coerce(LowerExpr(*s.args[i]), s.args[i]->type, Type::kI64);
      B().StoreStack(t_keys[i], k);
    }
    Value h = Value::Const(static_cast<int64_t>(kFnvBasis));
    for (size_t i = 0; i < nkeys; ++i) {
      Value k = B().LoadStack(t_keys[i]);
      Value k32 = B().Cast(Opcode::kTrunc, Type::kI32, k);
      h = B().Binary(Opcode::kXor, Type::kI32, h, k32);
      h = B().Binary(Opcode::kMul, Type::kI32, h, Value::Const(kFnvPrime));
    }
    B().StoreStack(t_h, h);
    Value start;
    if (nic) {
      Value hh = B().LoadStack(t_h);
      Value bucket = B().Binary(Opcode::kURem, Type::kI32, hh,
                                Value::Const(static_cast<int64_t>(buckets)));
      start = B().Binary(Opcode::kMul, Type::kI32, bucket,
                         Value::Const(static_cast<int64_t>(spb)));
    } else {
      Value hh = B().LoadStack(t_h);
      start = B().Binary(Opcode::kURem, Type::kI32, hh,
                         Value::Const(static_cast<int64_t>(m.capacity)));
    }
    B().StoreStack(t_idx, start);
    B().StoreStack(t_n, Value::Const(0));

    uint32_t cond_b = NewBlock("probe.cond");
    uint32_t body_b = NewBlock("probe.body");
    uint32_t echk_b = NewBlock("probe.echk");
    uint32_t latch_b = NewBlock("probe.latch");
    uint32_t hit_b = NewBlock("probe.hit");
    uint32_t miss_b = NewBlock("probe.miss");
    uint32_t join_b = NewBlock("probe.join");
    s.block_cond = static_cast<int>(cond_b);
    s.block_body = static_cast<int>(body_b);
    s.block_echk = static_cast<int>(echk_b);
    s.block_latch = static_cast<int>(latch_b);
    s.block_hit = static_cast<int>(hit_b);
    s.block_miss = static_cast<int>(miss_b);
    B().Br(cond_b);

    // cond: n < bound ?
    B().SetInsertPoint(cond_b);
    Value n = B().LoadStack(t_n);
    Value c = B().Compare(Opcode::kIcmpUlt, n, Value::Const(static_cast<int64_t>(bound)));
    B().CondBr(c, body_b, miss_b);

    // body: load stored key fields, compare against probe keys.
    B().SetInsertPoint(body_b);
    Value idx = B().LoadStack(t_idx);
    Value match;  // i1 chain
    for (size_t i = 0; i < nkeys; ++i) {
      Type kt = m.key_fields[i];
      Value stored = B().LoadState(sym, kt, idx, KeyFieldOffset(m, i));
      Value stored64 = Coerce(stored, kt, Type::kI64);
      if (i == 0) {
        B().StoreStack(t_k0, stored64);
      }
      Value want = B().LoadStack(t_keys[i]);
      Value eq = B().Compare(Opcode::kIcmpEq, stored64, want);
      match = (i == 0) ? eq : B().Binary(Opcode::kAnd, Type::kI1, match, eq);
    }
    B().CondBr(match, hit_b, echk_b);

    // echk: empty slot terminates the probe (miss / insert target).
    B().SetInsertPoint(echk_b);
    Value k0 = B().LoadStack(t_k0);
    Value empty = B().Compare(Opcode::kIcmpEq, k0, Value::Const(0));
    if (s.kind == StmtKind::kMapInsert) {
      B().CondBr(empty, hit_b, latch_b);  // claim the empty slot
    } else {
      B().CondBr(empty, miss_b, latch_b);
    }

    // latch: advance the probe index.
    B().SetInsertPoint(latch_b);
    Value iv = B().LoadStack(t_idx);
    Value next = B().Binary(Opcode::kAdd, Type::kI32, iv, Value::Const(1));
    if (!nic) {
      next = B().Binary(Opcode::kURem, Type::kI32, next,
                        Value::Const(static_cast<int64_t>(m.capacity)));
    }
    B().StoreStack(t_idx, next);
    Value nv = B().LoadStack(t_n);
    B().StoreStack(t_n, B().Binary(Opcode::kAdd, Type::kI32, nv, Value::Const(1)));
    B().Br(cond_b);

    // hit / write.
    B().SetInsertPoint(hit_b);
    Value hidx = B().LoadStack(t_idx);
    switch (s.kind) {
      case StmtKind::kMapFind:
        for (size_t j = 0; j < s.outs.size(); ++j) {
          Type vt = m.value_fields[j].type;
          Value v = B().LoadState(sym, vt, hidx, ValueFieldOffset(m, j));
          uint32_t slot = Slot(s.outs[j]);
          B().StoreStack(slot, Coerce(v, vt, B().func().slots[slot].type));
        }
        if (!s.found_local.empty()) {
          B().StoreStack(Slot(s.found_local), Value::Const(1));
        }
        break;
      case StmtKind::kMapInsert:
        for (size_t i = 0; i < nkeys; ++i) {
          Type kt = m.key_fields[i];
          Value k = B().LoadStack(t_keys[i]);
          B().StoreState(sym, kt, Coerce(k, Type::kI64, kt), hidx, KeyFieldOffset(m, i));
        }
        for (size_t j = 0; j < m.value_fields.size(); ++j) {
          Type vt = m.value_fields[j].type;
          const Expr& ve = *s.args[nkeys + j];
          Value v = Coerce(LowerExpr(ve), ve.type, vt);
          B().StoreState(sym, vt, v, hidx, ValueFieldOffset(m, j));
        }
        break;
      case StmtKind::kMapErase: {
        Type kt = m.key_fields[0];
        B().StoreState(sym, kt, Value::Const(0), hidx, 0);
        break;
      }
      default:
        break;
    }
    B().Br(join_b);

    // miss.
    B().SetInsertPoint(miss_b);
    if (s.kind == StmtKind::kMapFind && !s.found_local.empty()) {
      B().StoreStack(Slot(s.found_local), Value::Const(0));
    }
    B().Br(join_b);

    B().SetInsertPoint(join_b);
  }

  Program& p_;
  std::optional<IrBuilder> builder_;
  std::map<std::string, uint32_t> slot_by_name_;
  std::set<int> blocks_with_entry_;
  int block_seq_ = 0;
};

}  // namespace

LowerResult LowerProgram(Program& p) { return Lowerer(p).Run(); }

}  // namespace clara
