#include "src/lang/parse.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>
#include <utility>
#include <vector>

namespace clara {
namespace {

enum class Tok : uint8_t {
  kEof,
  kIdent,   // also keywords; text carries the spelling
  kNumber,  // unsigned decimal
  kPunct,   // operators and delimiters, text carries the spelling
  kComment, // text after "//", trimmed
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  uint64_t number = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token Next() {
    SkipSpace();
    Token t;
    t.line = line_;
    if (pos_ >= src_.size()) {
      return t;
    }
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_')) {
        ++pos_;
      }
      t.kind = Tok::kIdent;
      t.text = std::string(src_.substr(start, pos_ - start));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      uint64_t v = 0;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        v = v * 10 + static_cast<uint64_t>(src_[pos_] - '0');
        ++pos_;
      }
      t.kind = Tok::kNumber;
      t.number = v;
      return t;
    }
    if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
      pos_ += 2;
      size_t start = pos_;
      while (pos_ < src_.size() && src_[pos_] != '\n') {
        ++pos_;
      }
      std::string_view body = src_.substr(start, pos_ - start);
      while (!body.empty() && body.front() == ' ') {
        body.remove_prefix(1);
      }
      t.kind = Tok::kComment;
      t.text = std::string(body);
      return t;
    }
    // Multi-character operators first.
    static const char* kTwoChar[] = {"->", "<<", ">>", "==", "!=", "<=", ">=", "++", "::"};
    for (const char* op : kTwoChar) {
      if (src_.substr(pos_).substr(0, 2) == op) {
        t.kind = Tok::kPunct;
        t.text = op;
        pos_ += 2;
        return t;
      }
    }
    t.kind = Tok::kPunct;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

 private:
  void SkipSpace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      if (src_[pos_] == '\n') {
        ++line_;
      }
      ++pos_;
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

bool TypeFromWord(const std::string& w, Type* out) {
  if (w == "bool") { *out = Type::kI1; return true; }
  if (w == "u8") { *out = Type::kI8; return true; }
  if (w == "u16") { *out = Type::kI16; return true; }
  if (w == "u32") { *out = Type::kI32; return true; }
  if (w == "u64") { *out = Type::kI64; return true; }
  return false;
}

// Greedy decomposition of a byte total into field types (largest first) —
// the surface syntax only records key/value byte totals.
std::vector<Type> TypesForBytes(uint32_t bytes) {
  std::vector<Type> out;
  while (bytes >= 8) { out.push_back(Type::kI64); bytes -= 8; }
  while (bytes >= 4) { out.push_back(Type::kI32); bytes -= 4; }
  while (bytes >= 2) { out.push_back(Type::kI16); bytes -= 2; }
  while (bytes >= 1) { out.push_back(Type::kI8); bytes -= 1; }
  return out;
}

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) { Advance(); }

  ParseResult Run() {
    ParseResult res;
    res.program = ParseTop();
    res.ok = error_.empty();
    res.error = error_;
    if (!res.ok) {
      res.program = Program{};
    }
    return res;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  void Advance() {
    cur_ = std::move(next_valid_ ? next_ : lex_.Next());
    next_valid_ = false;
    // Comments are insignificant except for map capacities, which peek for
    // them explicitly before the comment is skipped here.
    while (cur_.kind == Tok::kComment && !keep_comment_) {
      cur_ = lex_.Next();
    }
  }

  const Token& Peek() {
    if (!next_valid_) {
      next_ = lex_.Next();
      while (next_.kind == Tok::kComment && !keep_comment_) {
        next_ = lex_.Next();
      }
      next_valid_ = true;
    }
    return next_;
  }

  void Error(const std::string& msg) {
    if (error_.empty()) {
      error_ = "line " + std::to_string(cur_.line) + ": " + msg;
    }
  }

  bool IsPunct(const char* p) const { return cur_.kind == Tok::kPunct && cur_.text == p; }
  bool IsIdent(const char* w) const { return cur_.kind == Tok::kIdent && cur_.text == w; }

  bool ExpectPunct(const char* p) {
    if (!IsPunct(p)) {
      Error(std::string("expected '") + p + "', got '" + Spelling() + "'");
      return false;
    }
    Advance();
    return true;
  }

  bool ExpectIdent(const char* w) {
    if (!IsIdent(w)) {
      Error(std::string("expected '") + w + "', got '" + Spelling() + "'");
      return false;
    }
    Advance();
    return true;
  }

  std::string TakeIdent(const char* what) {
    if (cur_.kind != Tok::kIdent) {
      Error(std::string("expected ") + what + ", got '" + Spelling() + "'");
      return std::string();
    }
    std::string s = cur_.text;
    Advance();
    return s;
  }

  std::string Spelling() const {
    switch (cur_.kind) {
      case Tok::kEof: return "<eof>";
      case Tok::kNumber: return std::to_string(cur_.number);
      default: return cur_.text;
    }
  }

  bool Dead() const { return !error_.empty(); }

  // --- grammar ------------------------------------------------------------

  Program ParseTop() {
    Program p;
    ExpectIdent("class");
    p.name = TakeIdent("element name");
    ExpectPunct(":");
    ExpectIdent("public");
    ExpectIdent("Element");
    ExpectPunct("{");
    while (!Dead() && !IsIdent("void")) {
      if (cur_.kind == Tok::kEof) {
        Error("unexpected end of input in state declarations");
        break;
      }
      StateDecl s = ParseStateDecl();
      if (!Dead()) {
        p.state.push_back(std::move(s));
      }
    }
    for (const auto& s : p.state) {
      state_[s.name] = &s;
    }
    ExpectIdent("void");
    ExpectIdent("simple_action");
    ExpectPunct("(");
    ExpectIdent("Packet");
    ExpectPunct("*");
    ExpectIdent("pkt");
    ExpectPunct(")");
    ExpectPunct("{");
    p.body = ParseBody();
    ExpectPunct("}");
    ExpectPunct("}");
    ExpectPunct(";");
    return p;
  }

  StateDecl ParseStateDecl() {
    StateDecl s;
    if (IsIdent("HashMap") || IsIdent("NicHashMap")) {
      s.kind = StateKind::kMap;
      s.impl = IsIdent("HashMap") ? MapImpl::kHostLinearProbe : MapImpl::kNicFixedBucket;
      Advance();
      ExpectPunct("<");
      std::string key_word = TakeIdent("key spec");
      uint32_t key_bytes = 0;
      if (key_word.rfind("key", 0) != 0 ||
          (key_bytes = static_cast<uint32_t>(std::atoi(key_word.c_str() + 3))) == 0) {
        Error("expected keyN spec, got '" + key_word + "'");
        return s;
      }
      ExpectPunct(",");
      std::string val_word = TakeIdent("value spec");
      uint32_t value_bytes = 0;
      if (val_word.rfind("value", 0) != 0 ||
          (value_bytes = static_cast<uint32_t>(std::atoi(val_word.c_str() + 5))) == 0) {
        Error("expected valueN spec, got '" + val_word + "'");
        return s;
      }
      ExpectPunct(">");
      s.name = TakeIdent("map name");
      s.key_fields = TypesForBytes(key_bytes);
      int vi = 0;
      for (Type t : TypesForBytes(value_bytes)) {
        s.value_fields.push_back(ValueField{"v" + std::to_string(vi++), t});
      }
      // The capacity rides in a trailing "// cap N" comment.
      keep_comment_ = true;
      ExpectPunct(";");
      keep_comment_ = false;
      if (cur_.kind == Tok::kComment && cur_.text.rfind("cap ", 0) == 0) {
        s.capacity = static_cast<uint32_t>(std::atoi(cur_.text.c_str() + 4));
        Advance();
      } else {
        Error("map declaration missing '// cap N' capacity comment");
      }
      return s;
    }
    if (!TypeFromWord(cur_.text, &s.elem_type)) {
      Error("expected state type, got '" + Spelling() + "'");
      return s;
    }
    Advance();
    s.name = TakeIdent("state name");
    if (IsPunct("[")) {
      Advance();
      s.kind = StateKind::kArray;
      if (cur_.kind != Tok::kNumber) {
        Error("expected array length");
        return s;
      }
      s.length = static_cast<uint32_t>(cur_.number);
      Advance();
      ExpectPunct("]");
    }
    ExpectPunct(";");
    return s;
  }

  std::vector<StmtPtr> ParseBody() {
    std::vector<StmtPtr> body;
    while (!Dead() && !IsPunct("}")) {
      if (cur_.kind == Tok::kEof) {
        Error("unexpected end of input in statement block");
        break;
      }
      StmtPtr s = ParseStmt();
      if (s != nullptr) {
        body.push_back(std::move(s));
      }
    }
    return body;
  }

  StmtPtr ParseStmt() {
    if (cur_.kind != Tok::kIdent) {
      Error("expected statement, got '" + Spelling() + "'");
      return nullptr;
    }
    Type t;
    if (IsIdent("if")) {
      return ParseIf();
    }
    if (IsIdent("for")) {
      return ParseFor();
    }
    if (IsIdent("return")) {
      Advance();
      ExpectPunct(";");
      return Return();
    }
    if (IsIdent("pkt")) {
      return ParsePktStmt();
    }
    if (TypeFromWord(cur_.text, &t)) {
      Advance();
      std::string name = TakeIdent("local name");
      ExpectPunct("=");
      ExprPtr init = ParseExpr();
      ExpectPunct(";");
      return Dead() ? nullptr : Decl(name, t, std::move(init));
    }
    std::string name = TakeIdent("identifier");
    if (IsPunct(".")) {
      Advance();
      std::string method = TakeIdent("map method");
      std::vector<ExprPtr> args = ParseArgList();
      ExpectPunct(";");
      if (Dead()) {
        return nullptr;
      }
      if (method == "insert") {
        // args = keys then values; split by the declared geometry.
        auto it = state_.find(name);
        size_t keys = it != state_.end() ? it->second->key_fields.size() : args.size();
        std::vector<ExprPtr> key_args;
        std::vector<ExprPtr> val_args;
        for (size_t i = 0; i < args.size(); ++i) {
          (i < keys ? key_args : val_args).push_back(std::move(args[i]));
        }
        return MapInsert(name, std::move(key_args), std::move(val_args));
      }
      if (method == "erase") {
        return MapErase(name, std::move(args));
      }
      Error("unknown map method '" + method + "'");
      return nullptr;
    }
    if (IsPunct("(")) {
      std::vector<ExprPtr> args = ParseArgList();
      ExpectPunct(";");
      return Dead() ? nullptr : Api(name, std::move(args));
    }
    if (IsPunct("[")) {
      Advance();
      ExprPtr index = ParseExpr();
      ExpectPunct("]");
      ExpectPunct("=");
      ExprPtr value = ParseExpr();
      ExpectPunct(";");
      return Dead() ? nullptr : AssignStateAt(name, std::move(index), std::move(value));
    }
    ExpectPunct("=");
    // `f = m.find(keys) -> {outs};` versus a plain assignment.
    if (cur_.kind == Tok::kIdent && Peek().kind == Tok::kPunct && Peek().text == "." &&
        state_.count(cur_.text) > 0) {
      std::string map = TakeIdent("map name");
      ExpectPunct(".");
      ExpectIdent("find");
      std::vector<ExprPtr> keys = ParseArgList();
      std::vector<std::string> outs;
      if (IsPunct("->")) {
        Advance();
        ExpectPunct("{");
        while (!Dead() && !IsPunct("}")) {
          outs.push_back(TakeIdent("value destination"));
          if (IsPunct(",")) {
            Advance();
          }
        }
        ExpectPunct("}");
      }
      ExpectPunct(";");
      return Dead() ? nullptr : MapFind(map, std::move(keys), name, std::move(outs));
    }
    ExprPtr value = ParseExpr();
    ExpectPunct(";");
    if (Dead()) {
      return nullptr;
    }
    auto it = state_.find(name);
    if (it != state_.end() && it->second->kind == StateKind::kScalar) {
      return AssignState(name, std::move(value));
    }
    return Assign(name, std::move(value));
  }

  StmtPtr ParseIf() {
    Advance();  // if
    ExprPtr cond = ParseExpr();
    ExpectPunct("{");
    std::vector<StmtPtr> then_body = ParseBody();
    ExpectPunct("}");
    std::vector<StmtPtr> else_body;
    if (IsIdent("else")) {
      Advance();
      ExpectPunct("{");
      else_body = ParseBody();
      ExpectPunct("}");
    }
    return Dead() ? nullptr : If(std::move(cond), std::move(then_body), std::move(else_body));
  }

  StmtPtr ParseFor() {
    Advance();  // for
    ExpectPunct("(");
    std::string var = TakeIdent("loop variable");
    ExpectPunct("=");
    ExprPtr lo = ParseExpr();
    ExpectPunct(";");
    std::string var2 = TakeIdent("loop variable");
    if (!Dead() && var2 != var) {
      Error("loop condition must test '" + var + "'");
    }
    ExpectPunct("<");
    ExprPtr hi = ParseExpr();
    ExpectPunct(";");
    ExpectPunct("++");
    std::string var3 = TakeIdent("loop variable");
    if (!Dead() && var3 != var) {
      Error("loop increment must bump '" + var + "'");
    }
    ExpectPunct(")");
    ExpectPunct("{");
    std::vector<StmtPtr> body = ParseBody();
    ExpectPunct("}");
    return Dead() ? nullptr : For(var, std::move(lo), std::move(hi), std::move(body));
  }

  StmtPtr ParsePktStmt() {
    Advance();  // pkt
    ExpectPunct("->");
    if (IsIdent("kill")) {
      Advance();
      ExpectPunct("(");
      ExpectPunct(")");
      ExpectPunct(";");
      return Dead() ? nullptr : Drop();
    }
    if (IsIdent("send")) {
      Advance();
      ExpectPunct("(");
      ExprPtr port;
      if (!IsPunct(")")) {
        port = ParseExpr();
      }
      ExpectPunct(")");
      ExpectPunct(";");
      return Dead() ? nullptr : Send(std::move(port));
    }
    if (IsIdent("payload")) {
      Advance();
      ExpectPunct("[");
      ExprPtr index = ParseExpr();
      ExpectPunct("]");
      ExpectPunct("=");
      ExprPtr value = ParseExpr();
      ExpectPunct(";");
      return Dead() ? nullptr : AssignPayload(std::move(index), std::move(value));
    }
    std::string field = ParseFieldName();
    ExpectPunct("=");
    ExprPtr value = ParseExpr();
    ExpectPunct(";");
    return Dead() ? nullptr : AssignPkt(field, std::move(value));
  }

  // Dotted packet field name ("ip.src").
  std::string ParseFieldName() {
    std::string field = TakeIdent("packet field");
    while (IsPunct(".")) {
      Advance();
      field += "." + TakeIdent("packet field");
    }
    return field;
  }

  // --- expressions --------------------------------------------------------

  static int Precedence(const std::string& op) {
    if (op == "*" || op == "/" || op == "%") return 5;
    if (op == "+" || op == "-") return 4;
    if (op == "<<" || op == ">>") return 3;
    if (op == "&" || op == "^" || op == "|") return 2;
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" || op == ">=") {
      return 1;
    }
    return 0;
  }

  static bool OpcodeFor(const std::string& op, Opcode* out, bool* compare) {
    *compare = false;
    if (op == "+") { *out = Opcode::kAdd; return true; }
    if (op == "-") { *out = Opcode::kSub; return true; }
    if (op == "*") { *out = Opcode::kMul; return true; }
    if (op == "/") { *out = Opcode::kUDiv; return true; }
    if (op == "%") { *out = Opcode::kURem; return true; }
    if (op == "&") { *out = Opcode::kAnd; return true; }
    if (op == "|") { *out = Opcode::kOr; return true; }
    if (op == "^") { *out = Opcode::kXor; return true; }
    if (op == "<<") { *out = Opcode::kShl; return true; }
    if (op == ">>") { *out = Opcode::kLShr; return true; }
    *compare = true;
    if (op == "==") { *out = Opcode::kIcmpEq; return true; }
    if (op == "!=") { *out = Opcode::kIcmpNe; return true; }
    if (op == "<") { *out = Opcode::kIcmpUlt; return true; }
    if (op == "<=") { *out = Opcode::kIcmpUle; return true; }
    if (op == ">") { *out = Opcode::kIcmpUgt; return true; }
    if (op == ">=") { *out = Opcode::kIcmpUge; return true; }
    return false;
  }

  ExprPtr ParseExpr() { return ParseBinary(1); }

  ExprPtr ParseBinary(int min_prec) {
    ExprPtr lhs = ParsePrimary();
    while (!Dead() && cur_.kind == Tok::kPunct) {
      int prec = Precedence(cur_.text);
      if (prec < min_prec) {
        break;
      }
      Opcode op;
      bool compare;
      if (!OpcodeFor(cur_.text, &op, &compare)) {
        break;
      }
      Advance();
      ExprPtr rhs = ParseBinary(prec + 1);
      if (Dead()) {
        return nullptr;
      }
      lhs = compare ? Cmp(op, std::move(lhs), std::move(rhs))
                    : Bin(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  ExprPtr ParsePrimary() {
    if (Dead()) {
      return nullptr;
    }
    if (cur_.kind == Tok::kNumber) {
      uint64_t v = cur_.number;
      Advance();
      return Lit(v);
    }
    if (IsPunct("(")) {
      // Either a cast "(u32)x" or a parenthesized expression.
      Type t;
      if (Peek().kind == Tok::kIdent && TypeFromWord(Peek().text, &t)) {
        Advance();  // (
        Advance();  // type word
        ExpectPunct(")");
        ExprPtr inner = ParsePrimary();
        return Dead() ? nullptr : CastTo(t, std::move(inner));
      }
      Advance();
      ExprPtr inner = ParseExpr();
      ExpectPunct(")");
      return Dead() ? nullptr : std::move(inner);
    }
    if (IsIdent("pkt")) {
      Advance();
      ExpectPunct("->");
      if (IsIdent("payload")) {
        Advance();
        ExpectPunct("[");
        ExprPtr index = ParseExpr();
        ExpectPunct("]");
        return Dead() ? nullptr : PayloadAt(std::move(index));
      }
      std::string field = ParseFieldName();
      return Dead() ? nullptr : PktField(field);
    }
    if (cur_.kind == Tok::kIdent) {
      std::string name = TakeIdent("identifier");
      if (IsPunct("(")) {
        std::vector<ExprPtr> args = ParseArgList();
        return Dead() ? nullptr : CallExpr(name, std::move(args), Type::kI32);
      }
      auto it = state_.find(name);
      if (it != state_.end()) {
        if (it->second->kind == StateKind::kArray) {
          ExpectPunct("[");
          ExprPtr index = ParseExpr();
          ExpectPunct("]");
          return Dead() ? nullptr : StateAt(name, std::move(index));
        }
        if (it->second->kind == StateKind::kScalar) {
          return StateRef(name);
        }
        Error("map '" + name + "' used as a value");
        return nullptr;
      }
      return Local(name);
    }
    Error("expected expression, got '" + Spelling() + "'");
    return nullptr;
  }

  std::vector<ExprPtr> ParseArgList() {
    std::vector<ExprPtr> args;
    ExpectPunct("(");
    while (!Dead() && !IsPunct(")")) {
      args.push_back(ParseExpr());
      if (IsPunct(",")) {
        Advance();
      } else {
        break;
      }
    }
    ExpectPunct(")");
    return args;
  }

  Lexer lex_;
  Token cur_;
  Token next_;
  bool next_valid_ = false;
  bool keep_comment_ = false;
  std::string error_;
  std::unordered_map<std::string, const StateDecl*> state_;
};

}  // namespace

ParseResult ParseProgram(std::string_view source) { return Parser(source).Run(); }

}  // namespace clara
