#include "src/workload/workload.h"

#include <algorithm>
#include <cmath>

namespace clara {

WorkloadSpec WorkloadSpec::LargeFlows(uint16_t pkt_size) {
  WorkloadSpec s;
  s.name = "large-flows";
  s.num_flows = 64;
  s.zipf_s = 1.1;
  s.pkt_size = pkt_size;
  s.syn_ratio = 0.002;
  return s;
}

WorkloadSpec WorkloadSpec::SmallFlows(uint16_t pkt_size) {
  WorkloadSpec s;
  s.name = "small-flows";
  s.num_flows = 65536;
  s.zipf_s = 0.4;
  s.pkt_size = pkt_size;
  s.syn_ratio = 0.15;
  return s;
}

Packet MakeFlowPacket(const WorkloadSpec& spec, uint32_t flow_id, Rng& rng) {
  Packet p;
  // Derive a stable 5-tuple from the flow id. Keep addresses non-zero (the
  // baremetal maps use key==0 as the empty-slot sentinel).
  uint64_t h = flow_id * 0x9e3779b97f4a7c15ULL + 0x1234567ULL;
  h ^= h >> 29;
  p.src_ip = 0x0a000000u | (static_cast<uint32_t>(h) & 0x00ffffffu) | 0x0101u;
  p.dst_ip = 0xc0a80000u | ((static_cast<uint32_t>(h >> 24) & 0xffffu) | 1u);
  p.sport = static_cast<uint16_t>(1024 + (h >> 40) % 60000);
  p.dport = (flow_id % 7 == 0) ? 53 : ((flow_id % 3 == 0) ? 80 : 443);
  p.ip_proto = rng.NextBool(spec.udp_fraction) ? kProtoUdp : kProtoTcp;
  p.wire_len = std::max<uint16_t>(spec.pkt_size, 64);
  p.ip_len = static_cast<uint16_t>(p.wire_len - 14);
  p.payload_len = p.wire_len > 54 ? static_cast<uint16_t>(p.wire_len - 54) : 0;
  int prefix = p.PayloadPrefixLen();
  for (int i = 0; i < prefix; ++i) {
    p.payload[static_cast<size_t>(i)] = static_cast<uint8_t>(rng.NextU64());
  }
  p.tcp_flags = kTcpAck;
  p.tcp_seq = static_cast<uint32_t>(rng.NextU64());
  return p;
}

Trace GenerateTrace(const WorkloadSpec& spec, size_t n_packets) {
  Trace t;
  t.spec = spec;
  t.packets.reserve(n_packets);
  Rng rng(spec.seed);
  ZipfSampler zipf(spec.num_flows, std::max(spec.zipf_s, 1e-6));
  uint64_t ts = 0;
  for (size_t i = 0; i < n_packets; ++i) {
    uint32_t flow = spec.zipf_s <= 0.0
                        ? static_cast<uint32_t>(rng.NextBounded(spec.num_flows))
                        : static_cast<uint32_t>(zipf.Sample(rng));
    Packet p = MakeFlowPacket(spec, flow, rng);
    if (p.ip_proto == kProtoTcp && rng.NextBool(spec.syn_ratio)) {
      p.tcp_flags = kTcpSyn;
    }
    ts += 300 + rng.NextBounded(200);  // ~3 Mpps offered inter-arrival, ns
    p.ts_ns = ts;
    t.packets.push_back(p);
  }
  return t;
}

double EstimateCacheHitRate(const WorkloadSpec& spec, uint64_t cache_entries) {
  if (cache_entries == 0) {
    return 0.0;
  }
  if (cache_entries >= spec.num_flows) {
    return 1.0;
  }
  if (spec.zipf_s <= 0.0) {
    return static_cast<double>(cache_entries) / spec.num_flows;
  }
  // Mass of the `cache_entries` most popular ranks under Zipf(s): approximate
  // generalized harmonic sums with integrals for large n.
  auto harmonic = [&](double n) {
    double s = spec.zipf_s;
    if (std::abs(s - 1.0) < 1e-9) {
      return std::log(n) + 0.5772156649;
    }
    return (std::pow(n, 1.0 - s) - 1.0) / (1.0 - s) + 1.0;
  };
  double top = harmonic(static_cast<double>(cache_entries));
  double all = harmonic(static_cast<double>(spec.num_flows));
  return std::clamp(top / all, 0.0, 1.0);
}

}  // namespace clara
