// Traffic workload generator (the paper's trafgen-analogue).
//
// A WorkloadSpec captures the knobs the paper sweeps: number of concurrent
// flows, flow-popularity skew (Zipf), packet sizes, protocol mix, and the
// fraction of flow-starting (SYN) packets. GenerateTrace materializes a
// deterministic packet trace for interpreter profiling and simulator input.
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/nf/packet.h"
#include "src/util/rng.h"

namespace clara {

struct WorkloadSpec {
  std::string name = "default";
  uint32_t num_flows = 1024;
  double zipf_s = 1.0;       // 0 = uniform flow popularity
  uint16_t pkt_size = 128;   // wire bytes (>= 64)
  double syn_ratio = 0.05;   // fraction of packets carrying SYN (flow setup)
  double udp_fraction = 0.0; // fraction of UDP packets
  uint64_t seed = 42;

  // Large flows = few concurrent flows, each with many packets (cache
  // friendly); small flows = many concurrent flows (cache hostile). These
  // match the workload classes of Figure 11.
  static WorkloadSpec LargeFlows(uint16_t pkt_size = 256);
  static WorkloadSpec SmallFlows(uint16_t pkt_size = 128);
};

struct Trace {
  WorkloadSpec spec;
  std::vector<Packet> packets;
};

// Deterministically expands `spec` into `n_packets` packets. Flow tuples are
// derived from the flow id; payload bytes are pseudo-random.
Trace GenerateTrace(const WorkloadSpec& spec, size_t n_packets);

// Builds the 5-tuple packet for flow `flow_id` (without popularity sampling);
// used by tests that need specific flows.
Packet MakeFlowPacket(const WorkloadSpec& spec, uint32_t flow_id, Rng& rng);

// Estimated probability that a flow-state access hits a cache of
// `cache_entries` entries under the spec's flow count and Zipf skew. Used by
// the NIC memory model for the EMEM SRAM cache.
double EstimateCacheHitRate(const WorkloadSpec& spec, uint64_t cache_entries);

}  // namespace clara

#endif  // SRC_WORKLOAD_WORKLOAD_H_
