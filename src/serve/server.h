// The Clara insight-serving engine: a long-lived, in-process service that
// answers insight requests from a pre-trained bundle — the train-once /
// serve-many split.
//
// Architecture:
//   * Bounded request queue with admission control: Submit() fails fast with
//     kQueueFull instead of queueing unboundedly, and answers kShutdown once
//     Stop() has begun so no promise is ever abandoned.
//   * Per-request deadlines: a request that expires while queued is answered
//     with kDeadlineExceeded without being dispatched; one that finishes late
//     still succeeds but bumps the serve.deadline.overruns counter.
//   * Micro-batching: the dispatcher drains up to max_batch requests and
//     runs per-block LSTM inference for the whole batch as one flattened
//     (request, block) parallel map over the shared thread pool, then feeds
//     the assembled per-request predictions into ClaraAnalyzer::Analyze.
//   * LRU result cache keyed by (program content hash, workload hash); a hit
//     replays the cached encoded response body byte-for-byte (only the
//     echoed request id differs), skipping analysis entirely.
//   * Hot artifact reload: the trained model lives in an immutable
//     ModelSnapshot behind a mutex-guarded shared_ptr. Reload() builds and
//     canary-validates a candidate entirely off the serving path, then
//     atomically swaps the pointer and clears the result cache; batches in
//     flight finish on the snapshot they started with (they hold their own
//     shared_ptr), so no request ever sees a half-swapped model. Rejected
//     candidates (untrained, CRC-damaged, canary failure) leave the old
//     snapshot serving. Each successful swap bumps artifact_version().
//   * Brownout degradation: when the rolling SLO window flips degraded, a
//     hysteretic BrownoutPolicy puts the engine in brownout — admitted
//     deadline budgets are halved, the lowest-priority queued requests are
//     shed with kShedded + a retry_after_ms hint, cache misses from the
//     lowest priority class are shed instead of inferred (cache hits always
//     serve), and inference drops to the int8 backend when AVX2 is
//     available. Exit requires the p99 to stay below the threshold for a
//     hold period, preventing enter/exit oscillation.
//   * Instrumented via src/obs: serve.queue.depth, serve.batch.size,
//     serve.cache.{hits,misses}, serve.latency_us (p50/p99), error/overrun
//     counters, serve.reload.{ok,rejected}, serve.brownout.{entered,exited},
//     serve.shedded, plus the fault.* injection counters.
//   * Telemetry plane: every request is traced end to end — per-stage spans
//     (queue wait, program resolution, batched inference, analysis, encode)
//     share the request's trace id in the global Chrome-trace sink, and the
//     response carries a per-stage latency breakdown. A rolling-window SLO
//     tracker (serve.slo.* gauges, --slo-p99-us gate) and a flight recorder
//     of recent requests feed the control-plane Stats/Health/Dump/Reload
//     frames, which HandleControl() answers immediately without queueing.
//
// Malformed requests, unknown elements, expired deadlines, engine shutdown,
// injected faults, and load shedding all degrade to structured error
// responses — the engine never crashes on bad input.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/analyzer.h"
#include "src/obs/flight.h"
#include "src/obs/slo.h"
#include "src/serve/brownout.h"
#include "src/serve/proto.h"

namespace clara {
namespace serve {

struct ServeOptions {
  NicConfig nic;
  size_t queue_capacity = 64;
  size_t max_batch = 8;
  size_t cache_capacity = 128;
  // Packets interpreted per request for workload-specific profiling (smaller
  // than the offline default: serving favors latency).
  size_t profile_packets = 2000;
  // LSTM inference backend for batched prediction (src/ml/infer.h). kF64 is
  // the training-time double path; kF32/kInt8 run the packed SIMD engine.
  InferBackend infer_backend = InferBackend::kF64;
  // Rolling-window SLO: when slo_p99_us > 0 and the window p99 exceeds it,
  // Health reports status "degraded" (and serve.slo.degraded flips to 1).
  // The same threshold arms the brownout policy.
  double slo_p99_us = 0;
  int64_t slo_window_ms = 60000;
  // Flight recorder depth (most recent request records kept for Dump).
  size_t flight_capacity = 128;
  // Brownout knobs (active only when slo_p99_us > 0); see BrownoutPolicy.
  double brownout_exit_margin = 0.8;
  int64_t brownout_exit_hold_ms = 2000;
  uint32_t brownout_retry_after_ms = 50;
};

class ServeEngine {
 public:
  explicit ServeEngine(TrainedBundle bundle, ServeOptions opts = ServeOptions{});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Starts the dispatcher thread. Idempotent; re-arms submission after Stop().
  void Start();
  // Stops the dispatcher; queued-but-unprocessed requests are answered with
  // kShutdown, and so is every Submit() that arrives once shutdown has
  // begun — no promise is ever left unresolved. Idempotent; also called by
  // the destructor.
  void Stop();

  // Asynchronous submission. The future always yields a response — errors
  // included — and resolves immediately with kQueueFull when the bounded
  // queue is at capacity, kShedded when brownout load-shedding rejects it,
  // or kShutdown when the engine is stopping. request_bytes is the wire
  // payload size when the request arrived over a transport (0 for
  // in-process callers); it only feeds the flight recorder.
  std::future<InsightResponse> Submit(InsightRequest req, uint32_t request_bytes = 0);

  // Synchronous convenience: Submit + wait. Works without Start() (processes
  // inline as a batch of one).
  InsightResponse Handle(InsightRequest req, uint32_t request_bytes = 0);

  // Decode a raw request payload, handle it, and encode the response —
  // transport front ends (pipe/socket) call this per frame.
  std::string HandlePayload(std::string_view payload);

  // Structured error response for transport-level failures (e.g. an
  // oversized frame that never yielded a payload).
  static std::string EncodeTransportError(ErrorCode code, const std::string& message);

  // ---- hot reload ----
  // Validates `bundle` (trained components + canary inference) and, on
  // success, atomically swaps it in as the serving model: the result cache
  // is cleared and artifact_version() is bumped. On failure returns false
  // with *error set and the previous model keeps serving untouched.
  // Thread-safe against concurrent request processing; batches in flight
  // finish on the snapshot they captured at dispatch.
  bool Reload(TrainedBundle bundle, std::string* error);
  // Reload from an artifact file (CRC-checked by the artifact store).
  bool ReloadFromFile(const std::string& path, std::string* error);
  // Path used by the control-plane kReload op (the daemon's --model-dir
  // bundle). Empty (default) makes control-plane reloads fail gracefully.
  void SetReloadPath(std::string path);

  // Monotonic model generation: 1 for the construction-time bundle, +1 per
  // successful Reload.
  uint64_t artifact_version() const {
    return artifact_version_.load(std::memory_order_acquire);
  }
  uint64_t reloads_ok() const { return reload_ok_.load(std::memory_order_relaxed); }
  uint64_t reloads_rejected() const {
    return reload_rejected_.load(std::memory_order_relaxed);
  }

  // ---- brownout ----
  bool brownout_active() const {
    return brownout_active_.load(std::memory_order_relaxed);
  }
  uint64_t shedded() const { return shedded_.load(std::memory_order_relaxed); }

  // ---- control plane (answered immediately, never queued) ----
  // A transport front end (the epoll event loop) can register a callback
  // rendering its connection gauges as one JSON object; StatsJson() embeds
  // the result under "transport". Unset (default) omits the key, keeping the
  // pipe/sequential envelopes unchanged.
  void SetTransportStatsProvider(std::function<std::string()> provider);
  // Metrics registry snapshot as one JSON object.
  std::string StatsJson() const;
  // Queue depth, cache hit rate, artifact version, uptime, SLO window state.
  std::string HealthJson() const;
  // Flight-recorder contents (most recent requests, oldest first).
  std::string DumpJson() const;
  // Decode a control-request payload and encode the answer; undecodable
  // payloads come back as an ok=false control response.
  std::string HandleControl(std::string_view payload);

  bool running() const { return running_; }
  size_t cache_entries() const;
  // The current snapshot's analyzer. In-process/test convenience: the
  // reference is only stable while no concurrent Reload() swaps the model.
  const ClaraAnalyzer& analyzer() const { return Model()->analyzer; }
  const obs::FlightRecorder& flight() const { return flight_; }
  // Rolling SLO window as of now (degraded flag included).
  obs::SloTracker::Window SloWindow() const;

 private:
  using Clock = std::chrono::steady_clock;

  // An immutable serving model: analyzer + the generation it belongs to.
  // Swapped wholesale by Reload(); readers pin it with a shared_ptr copy.
  struct ModelSnapshot {
    ModelSnapshot(AnalyzerOptions opts, TrainedBundle bundle, uint64_t ver)
        : analyzer(std::move(opts), std::move(bundle)), version(ver) {}
    ClaraAnalyzer analyzer;
    uint64_t version;
  };

  // One named sub-interval of a request's lifetime, recorded while the batch
  // is processed and emitted as a child trace span at fulfillment.
  struct StageSpan {
    const char* name;
    Clock::time_point start;
    Clock::time_point end;
  };

  struct Pending {
    InsightRequest req;
    std::promise<InsightResponse> promise;
    Clock::time_point enqueued;
    Clock::time_point drained;   // when the dispatcher picked it up
    Clock::time_point deadline;  // only meaningful when has_deadline
    bool has_deadline = false;
    bool cache_hit = false;
    uint32_t request_bytes = 0;  // wire payload size (0 for in-process calls)
    std::vector<StageSpan> spans;
  };

  void Loop();
  void ProcessBatch(std::vector<Pending> batch);
  // Fulfills one pending slot: records latency/error/overrun metrics, the
  // SLO window sample and the flight record, attaches the latency breakdown
  // to the response, and emits the request's trace spans.
  void Fulfill(Pending& p, InsightResponse resp);

  // Pins the current model snapshot.
  std::shared_ptr<ModelSnapshot> Model() const;
  // Validates a candidate bundle off the serving path (trained() + canary
  // inference on a registry element); returns the ready snapshot or null.
  std::shared_ptr<ModelSnapshot> ValidateCandidate(TrainedBundle bundle,
                                                   std::string* error);

  // Dispatcher-only: feeds the SLO window into the brownout policy, applies
  // enter/exit side effects (backend switch, queue shedding), and mirrors
  // the state into the atomics the other threads read.
  void UpdateBrownout();
  // Removes the lowest-priority (newest among ties) entries from queue_
  // until its depth is <= target. Requires mu_; returns the victims for the
  // caller to fulfil with kShedded outside the lock.
  std::vector<Pending> ShedLocked(size_t target_depth);
  // Shed/rejection response carrying the brownout retry hint.
  InsightResponse SheddedResponse(uint64_t id, const std::string& why);

  // Microseconds since engine construction (the SLO/flight timeline).
  int64_t NowUs() const;

  std::string CacheGet(uint64_t program_hash, uint64_t workload_hash);
  // `version` is the model generation the body was computed with; stale
  // puts (an in-flight batch finishing after a reload) are dropped.
  void CachePut(uint64_t program_hash, uint64_t workload_hash, std::string body,
                uint64_t version);
  void CacheClear();

  ServeOptions opts_;

  // Serving model. model_mu_ guards only the pointer swap; the snapshot
  // itself is immutable while shared (the dispatcher-owned backend switch
  // happens strictly between batches).
  mutable std::mutex model_mu_;
  std::shared_ptr<ModelSnapshot> model_;
  std::string reload_path_;  // guarded by model_mu_
  std::atomic<uint64_t> artifact_version_{1};
  std::atomic<uint64_t> reload_ok_{0};
  std::atomic<uint64_t> reload_rejected_{0};
  // Backend actually in effect (brownout may override opts_.infer_backend);
  // mirrored atomically so Stats/Health never race the dispatcher.
  std::atomic<InferBackend> effective_backend_;

  // Brownout plane. The policy object is dispatcher-owned; everyone else
  // reads the atomic mirrors.
  BrownoutPolicy brownout_;
  std::atomic<bool> brownout_active_{false};
  std::atomic<uint64_t> shedded_{0};
  int64_t last_brownout_us_ = 0;  // dispatcher-only throttle

  // Telemetry plane. Engine-local atomics shadow the obs counters so Health
  // stays correct even when the global obs switch is off.
  Clock::time_point started_ = Clock::now();
  obs::SloTracker slo_;
  obs::FlightRecorder flight_;
  std::atomic<uint64_t> trace_id_gen_{1};
  std::atomic<int64_t> last_slo_export_us_{0};
  std::atomic<bool> flight_dumped_{false};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};

  // Transport stats callback (see SetTransportStatsProvider).
  mutable std::mutex transport_mu_;
  std::function<std::string()> transport_stats_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool running_ = false;
  std::thread dispatcher_;

  // LRU cache: list front = most recent; map values point into the list.
  struct CacheEntry {
    uint64_t key_hi;
    uint64_t key_lo;
    std::string body;
  };
  mutable std::mutex cache_mu_;
  std::list<CacheEntry> lru_;
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_;
};

}  // namespace serve
}  // namespace clara

#endif  // SRC_SERVE_SERVER_H_
