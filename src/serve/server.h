// The Clara insight-serving engine: a long-lived, in-process service that
// answers insight requests from a pre-trained bundle — the train-once /
// serve-many split.
//
// Architecture:
//   * Bounded request queue with admission control: Submit() fails fast with
//     kQueueFull instead of queueing unboundedly.
//   * Per-request deadlines: a request that expires while queued is answered
//     with kDeadlineExceeded without being dispatched; one that finishes late
//     still succeeds but bumps the serve.deadline.overruns counter.
//   * Micro-batching: the dispatcher drains up to max_batch requests and
//     runs per-block LSTM inference for the whole batch as one flattened
//     (request, block) parallel map over the shared thread pool, then feeds
//     the assembled per-request predictions into ClaraAnalyzer::Analyze.
//   * LRU result cache keyed by (program content hash, workload hash); a hit
//     replays the cached encoded response body byte-for-byte (only the
//     echoed request id differs), skipping analysis entirely.
//   * Instrumented via src/obs: serve.queue.depth, serve.batch.size,
//     serve.cache.{hits,misses}, serve.latency_us (p50/p99), and error/
//     overrun counters, all visible in `clara_cli report`.
//
// Malformed requests, unknown elements, expired deadlines, and engine
// shutdown all degrade to structured error responses — the engine never
// crashes on bad input.
#ifndef SRC_SERVE_SERVER_H_
#define SRC_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/analyzer.h"
#include "src/serve/proto.h"

namespace clara {
namespace serve {

struct ServeOptions {
  NicConfig nic;
  size_t queue_capacity = 64;
  size_t max_batch = 8;
  size_t cache_capacity = 128;
  // Packets interpreted per request for workload-specific profiling (smaller
  // than the offline default: serving favors latency).
  size_t profile_packets = 2000;
};

class ServeEngine {
 public:
  explicit ServeEngine(TrainedBundle bundle, ServeOptions opts = ServeOptions{});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  // Starts the dispatcher thread. Idempotent.
  void Start();
  // Stops the dispatcher; queued-but-unprocessed requests are answered with
  // kShutdown. Idempotent; also called by the destructor.
  void Stop();

  // Asynchronous submission. The future always yields a response — errors
  // included — and resolves immediately with kQueueFull when the bounded
  // queue is at capacity.
  std::future<InsightResponse> Submit(InsightRequest req);

  // Synchronous convenience: Submit + wait. Works without Start() (processes
  // inline as a batch of one).
  InsightResponse Handle(InsightRequest req);

  // Decode a raw request payload, handle it, and encode the response —
  // transport front ends (pipe/socket) call this per frame.
  std::string HandlePayload(std::string_view payload);

  // Structured error response for transport-level failures (e.g. an
  // oversized frame that never yielded a payload).
  static std::string EncodeTransportError(ErrorCode code, const std::string& message);

  bool running() const { return running_; }
  size_t cache_entries() const;
  const ClaraAnalyzer& analyzer() const { return analyzer_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    InsightRequest req;
    std::promise<InsightResponse> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // only meaningful when has_deadline
    bool has_deadline = false;
  };

  void Loop();
  void ProcessBatch(std::vector<Pending> batch);
  // Fulfills one pending slot, recording latency/error/overrun metrics.
  void Fulfill(Pending& p, InsightResponse resp);

  std::string CacheGet(uint64_t program_hash, uint64_t workload_hash);
  void CachePut(uint64_t program_hash, uint64_t workload_hash, std::string body);

  ServeOptions opts_;
  ClaraAnalyzer analyzer_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool running_ = false;
  std::thread dispatcher_;

  // LRU cache: list front = most recent; map values point into the list.
  struct CacheEntry {
    uint64_t key_hi;
    uint64_t key_lo;
    std::string body;
  };
  mutable std::mutex cache_mu_;
  std::list<CacheEntry> lru_;
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_;
};

}  // namespace serve
}  // namespace clara

#endif  // SRC_SERVE_SERVER_H_
