#include "src/serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/elements/elements.h"
#include "src/lang/check.h"
#include "src/lang/interp.h"
#include "src/lang/parse.h"
#include "src/lang/printer.h"
#include "src/ml/kernels_f32.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/ml/simd.h"
#include "src/obs/trace.h"
#include "src/serve/artifact.h"
#include "src/synth/algorithm_corpus.h"
#include "src/util/binio.h"
#include "src/util/fault.h"
#include "src/util/parallel.h"

namespace clara {
namespace serve {
namespace {

uint64_t MixKey(uint64_t program_hash, uint64_t workload_hash) {
  return program_hash ^ (workload_hash * 0x9E3779B97F4A7C15ULL);
}

obs::SloTracker::Options SloOptionsFrom(const ServeOptions& opts) {
  obs::SloTracker::Options slo;
  slo.window_us = std::max<int64_t>(opts.slo_window_ms, 1) * 1000;
  slo.p99_threshold_us = opts.slo_p99_us;
  return slo;
}

uint32_t ClampUs(int64_t us) {
  return static_cast<uint32_t>(std::clamp<int64_t>(us, 0, UINT32_MAX));
}

int64_t SpanUs(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

// Registry handles are stable for the process lifetime (Reset() zeroes but
// keeps registrations), so look each one up once: the by-name map walk and
// the bucket-vector construction are too heavy for the per-request hot path.
obs::Histogram& LatencyHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us", obs::Histogram::ExponentialBuckets(1, 2, 32));
  return h;
}

obs::Histogram& BatchHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch.size", obs::Histogram::LinearBuckets(1, 1, 16));
  return h;
}

InsightResponse ErrorResponse(uint64_t id, ErrorCode code, std::string message) {
  InsightResponse resp;
  resp.id = id;
  resp.error = code;
  resp.error_message = std::move(message);
  return resp;
}

AnalyzerOptions MakeAnalyzerOptions(const ServeOptions& opts) {
  AnalyzerOptions a;
  a.nic = opts.nic;
  a.profile_packets = opts.profile_packets;
  return a;
}

BrownoutPolicy::Options BrownoutOptionsFrom(const ServeOptions& opts) {
  BrownoutPolicy::Options b;
  b.enter_threshold_us = opts.slo_p99_us;  // 0 keeps the policy disabled
  b.exit_margin = opts.brownout_exit_margin;
  b.exit_hold_us = opts.brownout_exit_hold_ms * 1000;
  b.retry_after_ms = opts.brownout_retry_after_ms;
  return b;
}

}  // namespace

ServeEngine::ServeEngine(TrainedBundle bundle, ServeOptions opts)
    : opts_(opts),
      model_(std::make_shared<ModelSnapshot>(MakeAnalyzerOptions(opts), std::move(bundle),
                                             /*ver=*/1)),
      effective_backend_(opts.infer_backend),
      brownout_(BrownoutOptionsFrom(opts)),
      slo_(SloOptionsFrom(opts)),
      flight_(opts.flight_capacity) {
  // Builds the packed f32/int8 engine once, before the first request; every
  // ProcessBatch prediction then runs through the selected backend.
  model_->analyzer.SetInferBackend(opts_.infer_backend);
}

ServeEngine::~ServeEngine() { Stop(); }

void ServeEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  stop_ = false;
  running_ = true;
  dispatcher_ = std::thread([this] { Loop(); });
}

void ServeEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
    leftovers.swap(queue_);
  }
  if (obs::Enabled() && !leftovers.empty()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.queue.depth")
        .Sub(static_cast<double>(leftovers.size()));
  }
  for (auto& p : leftovers) {
    p.promise.set_value(
        ErrorResponse(p.req.id, ErrorCode::kShutdown, "engine stopped before dispatch"));
  }
}

std::future<InsightResponse> ServeEngine::Submit(InsightRequest req,
                                                 uint32_t request_bytes) {
  Pending p;
  p.req = std::move(req);
  p.request_bytes = request_bytes;
  p.enqueued = Clock::now();
  bool brownout = brownout_active_.load(std::memory_order_relaxed);
  if (p.req.deadline_ms > 0) {
    // Brownout shrinks the admitted deadline budget: work we cannot finish
    // in time should fail fast at dispatch instead of occupying a batch slot.
    uint32_t budget = p.req.deadline_ms;
    if (brownout) {
      budget = std::max<uint32_t>(1, budget / 2);
    }
    p.has_deadline = true;
    p.deadline = p.enqueued + std::chrono::milliseconds(budget);
  }
  std::future<InsightResponse> fut = p.promise.get_future();
  // Fault site queue.admit: admission rejects a healthy request exactly the
  // way a full queue would, with a retry hint so well-behaved clients recover.
  if (fault::Armed() && fault::ShouldFail(fault::Site::kQueueAdmit)) {
    InsightResponse resp =
        ErrorResponse(p.req.id, ErrorCode::kQueueFull, "injected fault (queue.admit)");
    resp.retry_after_ms = 10;
    p.promise.set_value(std::move(resp));
    return fut;
  }
  std::vector<Pending> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Shutdown has begun (or completed without a restart): answer instead
      // of racing the dispatcher teardown and stranding the promise.
      p.promise.set_value(
          ErrorResponse(p.req.id, ErrorCode::kShutdown, "engine is stopping"));
      return fut;
    }
    if (queue_.size() >= opts_.queue_capacity) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("serve.queue.rejected").Add(1);
      }
      InsightResponse resp = ErrorResponse(
          p.req.id, ErrorCode::kQueueFull,
          "queue at capacity (" + std::to_string(opts_.queue_capacity) + ")");
      if (brownout) {
        resp.retry_after_ms = brownout_.options().retry_after_ms;
      }
      p.promise.set_value(std::move(resp));
      return fut;
    }
    if (brownout && queue_.size() >= std::max<size_t>(1, opts_.queue_capacity / 2)) {
      // Above the brownout watermark admission is priority-competitive: the
      // newcomer displaces the lowest-priority queued request (newest among
      // ties) if it outranks one, otherwise it is shed itself.
      size_t victim = queue_.size();  // sentinel: none below p's priority
      for (size_t i = queue_.size(); i-- > 0;) {
        uint8_t bar =
            victim == queue_.size() ? p.req.priority : queue_[victim].req.priority;
        if (queue_[i].req.priority < bar) {
          victim = i;
        }
      }
      if (victim == queue_.size()) {
        p.promise.set_value(
            SheddedResponse(p.req.id, "brownout: load shed above queue watermark"));
        return fut;
      }
      evicted.push_back(std::move(queue_[victim]));
      queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(victim));
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetGauge("serve.queue.depth").Sub(1);
      }
    }
    queue_.push_back(std::move(p));
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetGauge("serve.queue.depth").Add(1);
    }
  }
  for (auto& v : evicted) {
    Fulfill(v, SheddedResponse(v.req.id, "brownout: displaced by higher priority"));
  }
  cv_.notify_one();
  return fut;
}

InsightResponse ServeEngine::Handle(InsightRequest req, uint32_t request_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      // Inline single-request path (no dispatcher): still exercises the full
      // batch pipeline.
      Pending p;
      p.req = std::move(req);
      p.request_bytes = request_bytes;
      p.enqueued = Clock::now();
      if (p.req.deadline_ms > 0) {
        p.has_deadline = true;
        p.deadline = p.enqueued + std::chrono::milliseconds(p.req.deadline_ms);
      }
      std::future<InsightResponse> fut = p.promise.get_future();
      std::vector<Pending> batch;
      batch.push_back(std::move(p));
      ProcessBatch(std::move(batch));
      return fut.get();
    }
  }
  return Submit(std::move(req), request_bytes).get();
}

std::string ServeEngine::HandlePayload(std::string_view payload) {
  InsightRequest req;
  std::string err;
  if (!ParseRequest(payload, &req, &err)) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.requests.malformed").Add(1);
    }
    return EncodeResponse(ErrorResponse(0, ErrorCode::kBadRequest, err));
  }
  return EncodeResponse(Handle(std::move(req), static_cast<uint32_t>(payload.size())));
}

std::string ServeEngine::EncodeTransportError(ErrorCode code, const std::string& message) {
  return EncodeResponse(ErrorResponse(0, code, message));
}

void ServeEngine::Loop() {
  for (;;) {
    UpdateBrownout();
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Bounded wait instead of an open-ended one so brownout exit can make
      // progress while the daemon idles (the policy needs periodic Updates).
      cv_.wait_for(lock, std::chrono::milliseconds(100),
                   [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        return;  // leftovers answered by Stop()
      }
      if (queue_.empty()) {
        continue;  // timed out: refresh brownout state and wait again
      }
      size_t take = std::min(opts_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (obs::Enabled() && take > 0) {
        obs::MetricsRegistry::Global()
            .GetGauge("serve.queue.depth")
            .Sub(static_cast<double>(take));
      }
    }
    ProcessBatch(std::move(batch));
  }
}

int64_t ServeEngine::NowUs() const { return SpanUs(started_, Clock::now()); }

void ServeEngine::Fulfill(Pending& p, InsightResponse resp) {
  Clock::time_point now = Clock::now();
  bool error = resp.error != ErrorCode::kOk;
  bool overrun = p.has_deadline && now > p.deadline && !error;
  double us = std::chrono::duration_cast<std::chrono::nanoseconds>(now - p.enqueued)
                  .count() /
              1e3;

  // Trace id: honor the client's, otherwise mint one while a sink is live so
  // the trace file is still fully correlated.
  uint64_t trace_id = p.req.trace_id;
  obs::TraceSink* sink = obs::GlobalTrace();
  if (trace_id == 0 && sink != nullptr) {
    trace_id = trace_id_gen_.fetch_add(1, std::memory_order_relaxed);
  }

  // Per-stage latency breakdown, echoed to the client in the response.
  LatencyBreakdown& bd = resp.breakdown;
  bd.valid = true;
  bd.trace_id = trace_id;
  bd.cache_hit = p.cache_hit;
  Clock::time_point drained =
      p.drained.time_since_epoch().count() != 0 ? p.drained : p.enqueued;
  bd.queue_us = ClampUs(SpanUs(p.enqueued, drained));
  for (const StageSpan& s : p.spans) {
    uint32_t stage_us = ClampUs(SpanUs(s.start, s.end));
    if (std::string_view(s.name) == "serve.parse") {
      bd.parse_us += stage_us;
    } else if (std::string_view(s.name) == "serve.infer") {
      bd.infer_us += stage_us;
    } else if (std::string_view(s.name) == "serve.analyze") {
      bd.analyze_us += stage_us;
    } else if (std::string_view(s.name) == "serve.encode") {
      bd.encode_us += stage_us;
    }
  }
  bd.total_us = ClampUs(SpanUs(p.enqueued, now));

  // Emit the request's span tree: one root covering submit->fulfill, a queue
  // wait child, then the recorded processing stages — all on one track, all
  // tagged with the trace id.
  if (sink != nullptr) {
    int64_t now_sink_us = sink->NowUs();
    auto to_sink_us = [&](Clock::time_point tp) {
      return now_sink_us - SpanUs(tp, now);
    };
    uint32_t track = static_cast<uint32_t>(trace_id % 100000);
    auto span_event = [&](const char* name, int64_t ts_us, int64_t dur_us) {
      obs::TraceEvent e;
      e.name = name;
      e.cat = "serve";
      e.ts_us = ts_us;
      e.dur_us = dur_us;
      e.tid = track;
      e.trace_id = trace_id;
      return e;
    };
    std::vector<obs::TraceEvent> tree;
    tree.reserve(2 + p.spans.size());
    tree.push_back(span_event("serve.request", to_sink_us(p.enqueued),
                              SpanUs(p.enqueued, now)));
    tree.push_back(span_event("serve.queue_wait", to_sink_us(p.enqueued),
                              SpanUs(p.enqueued, drained)));
    for (const StageSpan& s : p.spans) {
      tree.push_back(span_event(s.name, to_sink_us(s.start), SpanUs(s.start, s.end)));
    }
    sink->AddEvents(std::move(tree));
  }

  // Rolling SLO window + flight recorder run regardless of the global obs
  // switch: Health/Dump must answer truthfully on an un-instrumented daemon.
  int64_t now_us = NowUs();
  slo_.Record(now_us, us, error, overrun);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  (p.cache_hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);

  obs::FlightRecord rec;
  rec.id = p.req.id;
  rec.trace_id = trace_id;
  rec.label = !p.req.source.empty() ? std::string("<inline>") : p.req.element;
  rec.outcome = static_cast<uint8_t>(resp.error);
  rec.cache_hit = p.cache_hit;
  rec.done_us = now_us;
  rec.request_bytes = p.request_bytes;
  rec.queue_us = bd.queue_us;
  rec.parse_us = bd.parse_us;
  rec.infer_us = bd.infer_us;
  rec.analyze_us = bd.analyze_us;
  rec.encode_us = bd.encode_us;
  rec.total_us = bd.total_us;
  flight_.Record(std::move(rec));

  // First internal error: dump the flight recorder once, automatically — the
  // context that led up to it is exactly what the ring still holds.
  if (resp.error == ErrorCode::kInternal &&
      !flight_dumped_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr, "serve: first internal error (request %llu); flight recorder:\n%s\n",
                 static_cast<unsigned long long>(p.req.id), flight_.ToJson().c_str());
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static obs::Counter& requests_counter = reg.GetCounter("serve.requests");
    requests_counter.Add(1);
    if (error) {
      reg.GetCounter("serve.errors").Add(1);
    }
    LatencyHist().Observe(us);
    if (overrun) {
      reg.GetCounter("serve.deadline.overruns").Add(1);
    }
    // Refresh the serve.slo.* gauges at most every 100 ms: snapshotting the
    // window merges every slice, too heavy for the per-request hot path.
    int64_t last = last_slo_export_us_.load(std::memory_order_relaxed);
    if (now_us - last >= 100000 &&
        last_slo_export_us_.compare_exchange_strong(last, now_us,
                                                    std::memory_order_relaxed)) {
      slo_.ExportGauges(now_us);
    }
  }
  p.promise.set_value(std::move(resp));
}

void ServeEngine::ProcessBatch(std::vector<Pending> batch) {
  // Pin the model for the whole batch: a concurrent Reload() swaps the
  // engine's pointer but cannot reclaim this snapshot until we drop it, so
  // every request in the batch is answered by one consistent model.
  std::shared_ptr<ModelSnapshot> model = Model();
  const ClaraAnalyzer& analyzer = model->analyzer;
  bool brownout = brownout_active_.load(std::memory_order_relaxed);
  Clock::time_point drained = Clock::now();
  for (auto& p : batch) {
    p.drained = drained;  // end of queue wait for every member of this batch
  }
  if (obs::Enabled()) {
    BatchHist().Observe(static_cast<double>(batch.size()));
  }

  // Per-slot resolution: program + cache lookup. Slots that error out or hit
  // the cache are fulfilled immediately and excluded from inference.
  struct Slot {
    Pending* pending = nullptr;
    Program program;
    std::unique_ptr<NfInstance> lowered;
    NfPrediction prediction;
    uint64_t program_hash = 0;
    uint64_t workload_hash = 0;
  };
  std::vector<Slot> live;
  live.reserve(batch.size());

  for (auto& p : batch) {
    if (p.has_deadline && Clock::now() > p.deadline) {
      Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kDeadlineExceeded,
                               "deadline expired before dispatch"));
      continue;
    }
    // Fault site dispatch: the worker path fails one request with a
    // transient internal error (retry hint attached) — the rest of the
    // batch must be unaffected.
    if (fault::Armed() && fault::ShouldFail(fault::Site::kDispatch)) {
      InsightResponse resp =
          ErrorResponse(p.req.id, ErrorCode::kInternal, "injected fault (dispatch)");
      resp.retry_after_ms = 10;
      Fulfill(p, std::move(resp));
      continue;
    }
    Slot slot;
    slot.pending = &p;
    StageSpan parse_span{"serve.parse", Clock::now(), {}};
    if (!p.req.source.empty()) {
      ParseResult parsed = ParseProgram(p.req.source);
      if (!parsed.ok) {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kParseError, parsed.error));
        continue;
      }
      CheckResult check = CheckProgram(parsed.program);
      if (!check.ok) {
        std::string msg = "program failed type check:";
        for (const auto& e : check.errors) {
          msg += " " + e + ";";
        }
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kCheckFailed, msg));
        continue;
      }
      slot.program = std::move(parsed.program);
    } else {
      const ElementInfo* info = nullptr;
      for (const auto& e : ElementRegistry()) {
        if (e.name == p.req.element) {
          info = &e;
          break;
        }
      }
      if (info == nullptr) {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kUnknownElement,
                                 "element '" + p.req.element + "' not in registry"));
        continue;
      }
      slot.program = info->make();
    }
    parse_span.end = Clock::now();
    p.spans.push_back(parse_span);

    slot.program_hash = Fnv1a64(ToSource(slot.program));
    slot.workload_hash = HashWorkload(p.req.workload);
    std::string cached = CacheGet(slot.program_hash, slot.workload_hash);
    if (!cached.empty()) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("serve.cache.hits").Add(1);
      }
      // Byte-identical replay of the cached body; only the id envelope
      // differs per request.
      p.cache_hit = true;
      StageSpan encode_span{"serve.encode", Clock::now(), {}};
      std::string payload = EncodeResponseWithBody(p.req.id, cached);
      InsightResponse resp;
      std::string err;
      bool ok = ParseResponse(payload, &resp, &err);
      encode_span.end = Clock::now();
      p.spans.push_back(encode_span);
      if (ok) {
        Fulfill(p, std::move(resp));
      } else {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kInternal, "cache decode: " + err));
      }
      continue;
    }
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.cache.misses").Add(1);
    }
    // Brownout prefers cache hits: a miss from the lowest priority class is
    // shed instead of spending inference on it, keeping batch slots for
    // cached replays and prioritized traffic.
    if (brownout && p.req.priority == 0) {
      Fulfill(p, SheddedResponse(p.req.id, "brownout: cache miss shed (priority 0)"));
      continue;
    }

    slot.lowered = std::make_unique<NfInstance>(CloneProgram(slot.program));
    if (!slot.lowered->ok()) {
      Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kCheckFailed,
                               "lowering failed: " + slot.lowered->error()));
      continue;
    }
    live.push_back(std::move(slot));
  }
  if (live.empty()) {
    return;
  }

  // Micro-batched inference: one flattened (slot, block) parallel map across
  // the whole batch, mirroring InstructionPredictor::PredictNf per slot.
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t s = 0; s < live.size(); ++s) {
    const Module& m = live[s].lowered->module();
    size_t blocks = m.functions.at(0).blocks.size();
    for (size_t b = 0; b < blocks; ++b) {
      pairs.emplace_back(s, b);
    }
  }
  const InstructionPredictor& predictor = analyzer.predictor();
  Clock::time_point infer_start = Clock::now();
  std::vector<BlockPrediction> block_preds = ParallelMap<BlockPrediction>(pairs.size(), [&](size_t i) {
    const auto& [s, b] = pairs[i];
    const Module& m = live[s].lowered->module();
    return predictor.PredictBlock(m, m.functions.at(0).blocks[b]);
  });
  Clock::time_point infer_end = Clock::now();
  // Inference is batch-wide: attribute the shared interval to every live slot
  // (each request's LSTM work overlapped the whole parallel map).
  for (auto& slot : live) {
    slot.pending->spans.push_back(StageSpan{"serve.infer", infer_start, infer_end});
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    NfPrediction& pred = live[pairs[i].first].prediction;
    const BlockPrediction& bp = block_preds[i];
    pred.total_compute += bp.compute;
    pred.total_mem_state += bp.mem_state;
    pred.blocks.push_back(bp);
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("serve.batch.blocks", obs::Histogram::ExponentialBuckets(1, 2, 16))
        .Observe(static_cast<double>(pairs.size()));
  }

  // Full analysis per live slot with the precomputed predictions.
  for (auto& slot : live) {
    Pending& p = *slot.pending;
    StageSpan analyze_span{"serve.analyze", Clock::now(), {}};
    OffloadingInsights insights =
        analyzer.Analyze(std::move(slot.program), p.req.workload, &slot.prediction);
    InsightResponse resp;
    resp.id = p.req.id;
    resp.nf_name = insights.nf_name;
    resp.accelerator = AccelClassName(insights.accelerator);
    resp.suggested_cores = insights.suggested_cores;
    resp.total_compute = insights.prediction.total_compute;
    resp.total_mem_state = insights.prediction.total_mem_state;
    resp.naive_mpps = insights.naive_perf.throughput_mpps;
    resp.naive_us = insights.naive_perf.latency_us;
    resp.tuned_mpps = insights.tuned_perf.throughput_mpps;
    resp.tuned_us = insights.tuned_perf.latency_us;
    resp.rendered = insights.ToString(opts_.nic);
    analyze_span.end = Clock::now();
    p.spans.push_back(analyze_span);
    StageSpan encode_span{"serve.encode", analyze_span.end, {}};
    CachePut(slot.program_hash, slot.workload_hash, EncodeResponseBody(resp),
             model->version);
    encode_span.end = Clock::now();
    p.spans.push_back(encode_span);
    Fulfill(p, std::move(resp));
  }
}

std::string ServeEngine::CacheGet(uint64_t program_hash, uint64_t workload_hash) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(MixKey(program_hash, workload_hash));
  if (it == cache_.end() || it->second->key_hi != program_hash ||
      it->second->key_lo != workload_hash) {
    return std::string();
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return it->second->body;
}

void ServeEngine::CachePut(uint64_t program_hash, uint64_t workload_hash, std::string body,
                           uint64_t version) {
  if (opts_.cache_capacity == 0) {
    return;
  }
  // A batch that started before a reload finishes on the old model; its
  // answers must not repopulate the freshly cleared cache.
  if (version != artifact_version_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  uint64_t key = MixKey(program_hash, workload_hash);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second->body = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{program_hash, workload_hash, std::move(body)});
  cache_[key] = lru_.begin();
  while (lru_.size() > opts_.cache_capacity) {
    const CacheEntry& victim = lru_.back();
    cache_.erase(MixKey(victim.key_hi, victim.key_lo));
    lru_.pop_back();
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.cache.entries")
        .Set(static_cast<double>(lru_.size()));
  }
}

void ServeEngine::CacheClear() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  lru_.clear();
  cache_.clear();
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetGauge("serve.cache.entries").Set(0);
  }
}

size_t ServeEngine::cache_entries() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return lru_.size();
}

std::shared_ptr<ServeEngine::ModelSnapshot> ServeEngine::Model() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

std::shared_ptr<ServeEngine::ModelSnapshot> ServeEngine::ValidateCandidate(
    TrainedBundle bundle, std::string* error) {
  if (!bundle.trained()) {
    *error = "candidate bundle is not fully trained";
    return nullptr;
  }
  auto cand = std::make_shared<ModelSnapshot>(MakeAnalyzerOptions(opts_),
                                              std::move(bundle), /*ver=*/0);
  cand->analyzer.SetInferBackend(effective_backend_.load(std::memory_order_relaxed));
  // Canary inference: before the candidate may serve traffic it must analyze
  // a known registry element to a sane insight — a bundle that deserialized
  // cleanly but predicts garbage is rejected here, off the serving path.
  const auto& registry = ElementRegistry();
  if (!registry.empty()) {
    OffloadingInsights canary =
        cand->analyzer.Analyze(registry.front().make(), WorkloadSpec::SmallFlows());
    if (canary.suggested_cores < 1 ||
        !std::isfinite(canary.prediction.total_compute) ||
        canary.prediction.total_compute < 0) {
      *error = "canary inference produced implausible insights";
      return nullptr;
    }
  }
  return cand;
}

bool ServeEngine::Reload(TrainedBundle bundle, std::string* error) {
  std::shared_ptr<ModelSnapshot> cand = ValidateCandidate(std::move(bundle), error);
  if (cand == nullptr) {
    reload_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.reload.rejected").Add(1);
    }
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    cand->version = artifact_version_.load(std::memory_order_relaxed) + 1;
    model_ = cand;
    artifact_version_.store(cand->version, std::memory_order_release);
  }
  // The old model's answers are stale the instant the swap is visible.
  CacheClear();
  reload_ok_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("serve.reload.ok").Add(1);
  }
  return true;
}

bool ServeEngine::ReloadFromFile(const std::string& path, std::string* error) {
  TrainedBundle bundle;
  if (!LoadBundleFile(path, &bundle, error)) {
    reload_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.reload.rejected").Add(1);
    }
    return false;
  }
  return Reload(std::move(bundle), error);
}

void ServeEngine::SetReloadPath(std::string path) {
  std::lock_guard<std::mutex> lock(model_mu_);
  reload_path_ = std::move(path);
}

InsightResponse ServeEngine::SheddedResponse(uint64_t id, const std::string& why) {
  InsightResponse resp = ErrorResponse(id, ErrorCode::kShedded, why);
  resp.retry_after_ms = brownout_.options().retry_after_ms;
  shedded_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("serve.shedded").Add(1);
  }
  return resp;
}

std::vector<ServeEngine::Pending> ServeEngine::ShedLocked(size_t target_depth) {
  std::vector<Pending> victims;
  while (queue_.size() > target_depth) {
    size_t victim = queue_.size() - 1;
    for (size_t i = queue_.size() - 1; i-- > 0;) {
      if (queue_[i].req.priority < queue_[victim].req.priority) {
        victim = i;  // strictly lower only: newest among ties stays victim
      }
    }
    victims.push_back(std::move(queue_[victim]));
    queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(victim));
  }
  if (obs::Enabled() && !victims.empty()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.queue.depth")
        .Sub(static_cast<double>(victims.size()));
  }
  return victims;
}

void ServeEngine::UpdateBrownout() {
  if (opts_.slo_p99_us <= 0) {
    return;
  }
  int64_t now_us = NowUs();
  if (now_us - last_brownout_us_ < 100000) {
    return;  // snapshotting the SLO window is too heavy to do per batch
  }
  last_brownout_us_ = now_us;
  obs::SloTracker::Window w = slo_.Snapshot(now_us);
  bool was = brownout_.active();
  bool active = brownout_.Update(now_us, w.p99_us, w.count);
  if (active == was) {
    return;
  }
  brownout_active_.store(active, std::memory_order_relaxed);
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter(active ? "serve.brownout.entered" : "serve.brownout.exited")
        .Add(1);
  }
  std::shared_ptr<ModelSnapshot> model = Model();
  if (active) {
    // Degrade inference to int8 when the AVX2 kernels make it the fast
    // path; without them the quantized engine is slower than f64 and the
    // switch would deepen the overload.
    if (opts_.infer_backend != InferBackend::kInt8 &&
        kernels::Avx2F32Kernels() != nullptr) {
      model->analyzer.SetInferBackend(InferBackend::kInt8);
      effective_backend_.store(InferBackend::kInt8, std::memory_order_relaxed);
    }
    // Entry shed: cut the backlog to half capacity, lowest priority first.
    std::vector<Pending> victims;
    {
      std::lock_guard<std::mutex> lock(mu_);
      victims = ShedLocked(std::max<size_t>(1, opts_.queue_capacity / 2));
    }
    for (auto& v : victims) {
      Fulfill(v, SheddedResponse(v.req.id, "brownout: entry shed"));
    }
  } else if (effective_backend_.load(std::memory_order_relaxed) != opts_.infer_backend) {
    model->analyzer.SetInferBackend(opts_.infer_backend);
    effective_backend_.store(opts_.infer_backend, std::memory_order_relaxed);
  }
}

obs::SloTracker::Window ServeEngine::SloWindow() const { return slo_.Snapshot(NowUs()); }

void ServeEngine::SetTransportStatsProvider(std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(transport_mu_);
  transport_stats_ = std::move(provider);
}

std::string ServeEngine::StatsJson() const {
  // Envelope so load tests can verify which inference path they measured;
  // the metrics registry dump keeps its shape under "metrics". stats_version
  // marks the envelope schema: 1 was the bare registry dump, 2 nests it.
  std::string j = "{";
  j += "\"stats_version\":2,";
  j += "\"infer\":\"" +
       std::string(InferBackendName(effective_backend_.load(std::memory_order_relaxed))) +
       "\",";
  j += "\"simd\":\"" + simd::FeatureString() + "\",";
  j += "\"artifact_version\":" + std::to_string(artifact_version()) + ",";
  j += "\"brownout\":" + std::string(brownout_active() ? "true" : "false") + ",";
  j += "\"fault\":" + fault::StatsJson() + ",";
  {
    // Additive key: v2 consumers that don't know "transport" skip it, so the
    // envelope schema version stays 2.
    std::lock_guard<std::mutex> lock(transport_mu_);
    if (transport_stats_) {
      j += "\"transport\":" + transport_stats_() + ",";
    }
  }
  j += "\"metrics\":" + obs::MetricsRegistry::Global().ToJson();
  j += "}";
  return j;
}

std::string ServeEngine::HealthJson() const {
  uint64_t requests = requests_.load(std::memory_order_relaxed);
  uint64_t errors = errors_.load(std::memory_order_relaxed);
  uint64_t hits = cache_hits_.load(std::memory_order_relaxed);
  uint64_t misses = cache_misses_.load(std::memory_order_relaxed);
  size_t depth = 0;
  bool running = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
    running = running_;
  }
  obs::SloTracker::Window slo = SloWindow();
  double hit_rate = hits + misses > 0
                        ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                        : 0.0;
  std::string j = "{";
  j += "\"status\":\"" + std::string(slo.degraded ? "degraded" : "ok") + "\",";
  j += "\"running\":" + std::string(running ? "true" : "false") + ",";
  j += "\"uptime_ms\":" + std::to_string(NowUs() / 1000) + ",";
  // Model generation (1 = boot-time bundle, +1 per successful hot reload).
  j += "\"artifact_version\":" + std::to_string(artifact_version()) + ",";
  j += "\"infer\":\"" +
       std::string(InferBackendName(effective_backend_.load(std::memory_order_relaxed))) +
       "\",";
  j += "\"simd\":\"" + simd::FeatureString() + "\",";
  j += "\"queue_depth\":" + std::to_string(depth) + ",";
  j += "\"queue_capacity\":" + std::to_string(opts_.queue_capacity) + ",";
  j += "\"requests\":" + std::to_string(requests) + ",";
  j += "\"errors\":" + std::to_string(errors) + ",";
  j += "\"cache\":{\"entries\":" + std::to_string(cache_entries()) +
       ",\"capacity\":" + std::to_string(opts_.cache_capacity) +
       ",\"hits\":" + std::to_string(hits) + ",\"misses\":" + std::to_string(misses) +
       ",\"hit_rate\":" + obs::JsonNumber(hit_rate) + "},";
  j += "\"slo\":{\"window_requests\":" + std::to_string(slo.count) +
       ",\"p50_us\":" + obs::JsonNumber(slo.p50_us) +
       ",\"p90_us\":" + obs::JsonNumber(slo.p90_us) +
       ",\"p99_us\":" + obs::JsonNumber(slo.p99_us) +
       ",\"p99_threshold_us\":" + obs::JsonNumber(opts_.slo_p99_us) +
       ",\"error_rate\":" + obs::JsonNumber(slo.error_rate) +
       ",\"overrun_rate\":" + obs::JsonNumber(slo.overrun_rate) +
       ",\"degraded\":" + std::string(slo.degraded ? "true" : "false") + "},";
  j += "\"brownout\":" + std::string(brownout_active() ? "true" : "false") + ",";
  j += "\"shedded\":" + std::to_string(shedded()) + ",";
  j += "\"reload\":{\"ok\":" + std::to_string(reloads_ok()) +
       ",\"rejected\":" + std::to_string(reloads_rejected()) + "}";
  j += "}";
  return j;
}

std::string ServeEngine::DumpJson() const { return flight_.ToJson(); }

std::string ServeEngine::HandleControl(std::string_view payload) {
  ControlRequest req;
  std::string err;
  ControlResponse resp;
  if (!ParseControlRequest(payload, &req, &err)) {
    resp.ok = false;
    resp.error = err;
    return EncodeControlResponse(resp);
  }
  resp.op = req.op;
  resp.ok = true;
  switch (req.op) {
    case ControlOp::kStats:
      resp.json = StatsJson();
      break;
    case ControlOp::kHealth:
      resp.json = HealthJson();
      break;
    case ControlOp::kDump:
      resp.json = DumpJson();
      break;
    case ControlOp::kReload: {
      std::string path;
      {
        std::lock_guard<std::mutex> lock(model_mu_);
        path = reload_path_;
      }
      std::string why;
      if (path.empty()) {
        resp.ok = false;
        resp.error = "reload: no artifact path configured";
      } else if (!ReloadFromFile(path, &why)) {
        resp.ok = false;
        resp.error = "reload rejected: " + why;
      } else {
        resp.json = "{\"reloaded\":true,\"artifact_version\":" +
                    std::to_string(artifact_version()) + "}";
      }
      break;
    }
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("serve.control.requests").Add(1);
  }
  return EncodeControlResponse(resp);
}

}  // namespace serve
}  // namespace clara
