#include "src/serve/server.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/elements/elements.h"
#include "src/lang/check.h"
#include "src/lang/interp.h"
#include "src/lang/parse.h"
#include "src/lang/printer.h"
#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/ml/simd.h"
#include "src/obs/trace.h"
#include "src/serve/artifact.h"
#include "src/synth/algorithm_corpus.h"
#include "src/util/binio.h"
#include "src/util/parallel.h"

namespace clara {
namespace serve {
namespace {

uint64_t MixKey(uint64_t program_hash, uint64_t workload_hash) {
  return program_hash ^ (workload_hash * 0x9E3779B97F4A7C15ULL);
}

obs::SloTracker::Options SloOptionsFrom(const ServeOptions& opts) {
  obs::SloTracker::Options slo;
  slo.window_us = std::max<int64_t>(opts.slo_window_ms, 1) * 1000;
  slo.p99_threshold_us = opts.slo_p99_us;
  return slo;
}

uint32_t ClampUs(int64_t us) {
  return static_cast<uint32_t>(std::clamp<int64_t>(us, 0, UINT32_MAX));
}

int64_t SpanUs(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::microseconds>(b - a).count();
}

// Registry handles are stable for the process lifetime (Reset() zeroes but
// keeps registrations), so look each one up once: the by-name map walk and
// the bucket-vector construction are too heavy for the per-request hot path.
obs::Histogram& LatencyHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us", obs::Histogram::ExponentialBuckets(1, 2, 32));
  return h;
}

obs::Histogram& BatchHist() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch.size", obs::Histogram::LinearBuckets(1, 1, 16));
  return h;
}

InsightResponse ErrorResponse(uint64_t id, ErrorCode code, std::string message) {
  InsightResponse resp;
  resp.id = id;
  resp.error = code;
  resp.error_message = std::move(message);
  return resp;
}

AnalyzerOptions MakeAnalyzerOptions(const ServeOptions& opts) {
  AnalyzerOptions a;
  a.nic = opts.nic;
  a.profile_packets = opts.profile_packets;
  return a;
}

}  // namespace

ServeEngine::ServeEngine(TrainedBundle bundle, ServeOptions opts)
    : opts_(opts),
      analyzer_(MakeAnalyzerOptions(opts), std::move(bundle)),
      slo_(SloOptionsFrom(opts)),
      flight_(opts.flight_capacity) {
  // Builds the packed f32/int8 engine once, before the first request; every
  // ProcessBatch prediction then runs through the selected backend.
  analyzer_.SetInferBackend(opts_.infer_backend);
}

ServeEngine::~ServeEngine() { Stop(); }

void ServeEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  stop_ = false;
  running_ = true;
  dispatcher_ = std::thread([this] { Loop(); });
}

void ServeEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
    leftovers.swap(queue_);
  }
  if (obs::Enabled() && !leftovers.empty()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.queue.depth")
        .Sub(static_cast<double>(leftovers.size()));
  }
  for (auto& p : leftovers) {
    p.promise.set_value(
        ErrorResponse(p.req.id, ErrorCode::kShutdown, "engine stopped before dispatch"));
  }
}

std::future<InsightResponse> ServeEngine::Submit(InsightRequest req,
                                                 uint32_t request_bytes) {
  Pending p;
  p.req = std::move(req);
  p.request_bytes = request_bytes;
  p.enqueued = Clock::now();
  if (p.req.deadline_ms > 0) {
    p.has_deadline = true;
    p.deadline = p.enqueued + std::chrono::milliseconds(p.req.deadline_ms);
  }
  std::future<InsightResponse> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= opts_.queue_capacity) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("serve.queue.rejected").Add(1);
      }
      p.promise.set_value(ErrorResponse(
          p.req.id, ErrorCode::kQueueFull,
          "queue at capacity (" + std::to_string(opts_.queue_capacity) + ")"));
      return fut;
    }
    queue_.push_back(std::move(p));
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetGauge("serve.queue.depth").Add(1);
    }
  }
  cv_.notify_one();
  return fut;
}

InsightResponse ServeEngine::Handle(InsightRequest req, uint32_t request_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      // Inline single-request path (no dispatcher): still exercises the full
      // batch pipeline.
      Pending p;
      p.req = std::move(req);
      p.request_bytes = request_bytes;
      p.enqueued = Clock::now();
      if (p.req.deadline_ms > 0) {
        p.has_deadline = true;
        p.deadline = p.enqueued + std::chrono::milliseconds(p.req.deadline_ms);
      }
      std::future<InsightResponse> fut = p.promise.get_future();
      std::vector<Pending> batch;
      batch.push_back(std::move(p));
      ProcessBatch(std::move(batch));
      return fut.get();
    }
  }
  return Submit(std::move(req), request_bytes).get();
}

std::string ServeEngine::HandlePayload(std::string_view payload) {
  InsightRequest req;
  std::string err;
  if (!ParseRequest(payload, &req, &err)) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.requests.malformed").Add(1);
    }
    return EncodeResponse(ErrorResponse(0, ErrorCode::kBadRequest, err));
  }
  return EncodeResponse(Handle(std::move(req), static_cast<uint32_t>(payload.size())));
}

std::string ServeEngine::EncodeTransportError(ErrorCode code, const std::string& message) {
  return EncodeResponse(ErrorResponse(0, code, message));
}

void ServeEngine::Loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        return;  // leftovers answered by Stop()
      }
      size_t take = std::min(opts_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (obs::Enabled() && take > 0) {
        obs::MetricsRegistry::Global()
            .GetGauge("serve.queue.depth")
            .Sub(static_cast<double>(take));
      }
    }
    ProcessBatch(std::move(batch));
  }
}

int64_t ServeEngine::NowUs() const { return SpanUs(started_, Clock::now()); }

void ServeEngine::Fulfill(Pending& p, InsightResponse resp) {
  Clock::time_point now = Clock::now();
  bool error = resp.error != ErrorCode::kOk;
  bool overrun = p.has_deadline && now > p.deadline && !error;
  double us = std::chrono::duration_cast<std::chrono::nanoseconds>(now - p.enqueued)
                  .count() /
              1e3;

  // Trace id: honor the client's, otherwise mint one while a sink is live so
  // the trace file is still fully correlated.
  uint64_t trace_id = p.req.trace_id;
  obs::TraceSink* sink = obs::GlobalTrace();
  if (trace_id == 0 && sink != nullptr) {
    trace_id = trace_id_gen_.fetch_add(1, std::memory_order_relaxed);
  }

  // Per-stage latency breakdown, echoed to the client in the response.
  LatencyBreakdown& bd = resp.breakdown;
  bd.valid = true;
  bd.trace_id = trace_id;
  bd.cache_hit = p.cache_hit;
  Clock::time_point drained =
      p.drained.time_since_epoch().count() != 0 ? p.drained : p.enqueued;
  bd.queue_us = ClampUs(SpanUs(p.enqueued, drained));
  for (const StageSpan& s : p.spans) {
    uint32_t stage_us = ClampUs(SpanUs(s.start, s.end));
    if (std::string_view(s.name) == "serve.parse") {
      bd.parse_us += stage_us;
    } else if (std::string_view(s.name) == "serve.infer") {
      bd.infer_us += stage_us;
    } else if (std::string_view(s.name) == "serve.analyze") {
      bd.analyze_us += stage_us;
    } else if (std::string_view(s.name) == "serve.encode") {
      bd.encode_us += stage_us;
    }
  }
  bd.total_us = ClampUs(SpanUs(p.enqueued, now));

  // Emit the request's span tree: one root covering submit->fulfill, a queue
  // wait child, then the recorded processing stages — all on one track, all
  // tagged with the trace id.
  if (sink != nullptr) {
    int64_t now_sink_us = sink->NowUs();
    auto to_sink_us = [&](Clock::time_point tp) {
      return now_sink_us - SpanUs(tp, now);
    };
    uint32_t track = static_cast<uint32_t>(trace_id % 100000);
    auto span_event = [&](const char* name, int64_t ts_us, int64_t dur_us) {
      obs::TraceEvent e;
      e.name = name;
      e.cat = "serve";
      e.ts_us = ts_us;
      e.dur_us = dur_us;
      e.tid = track;
      e.trace_id = trace_id;
      return e;
    };
    std::vector<obs::TraceEvent> tree;
    tree.reserve(2 + p.spans.size());
    tree.push_back(span_event("serve.request", to_sink_us(p.enqueued),
                              SpanUs(p.enqueued, now)));
    tree.push_back(span_event("serve.queue_wait", to_sink_us(p.enqueued),
                              SpanUs(p.enqueued, drained)));
    for (const StageSpan& s : p.spans) {
      tree.push_back(span_event(s.name, to_sink_us(s.start), SpanUs(s.start, s.end)));
    }
    sink->AddEvents(std::move(tree));
  }

  // Rolling SLO window + flight recorder run regardless of the global obs
  // switch: Health/Dump must answer truthfully on an un-instrumented daemon.
  int64_t now_us = NowUs();
  slo_.Record(now_us, us, error, overrun);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (error) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  (p.cache_hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);

  obs::FlightRecord rec;
  rec.id = p.req.id;
  rec.trace_id = trace_id;
  rec.label = !p.req.source.empty() ? std::string("<inline>") : p.req.element;
  rec.outcome = static_cast<uint8_t>(resp.error);
  rec.cache_hit = p.cache_hit;
  rec.done_us = now_us;
  rec.request_bytes = p.request_bytes;
  rec.queue_us = bd.queue_us;
  rec.parse_us = bd.parse_us;
  rec.infer_us = bd.infer_us;
  rec.analyze_us = bd.analyze_us;
  rec.encode_us = bd.encode_us;
  rec.total_us = bd.total_us;
  flight_.Record(std::move(rec));

  // First internal error: dump the flight recorder once, automatically — the
  // context that led up to it is exactly what the ring still holds.
  if (resp.error == ErrorCode::kInternal &&
      !flight_dumped_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr, "serve: first internal error (request %llu); flight recorder:\n%s\n",
                 static_cast<unsigned long long>(p.req.id), flight_.ToJson().c_str());
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    static obs::Counter& requests_counter = reg.GetCounter("serve.requests");
    requests_counter.Add(1);
    if (error) {
      reg.GetCounter("serve.errors").Add(1);
    }
    LatencyHist().Observe(us);
    if (overrun) {
      reg.GetCounter("serve.deadline.overruns").Add(1);
    }
    // Refresh the serve.slo.* gauges at most every 100 ms: snapshotting the
    // window merges every slice, too heavy for the per-request hot path.
    int64_t last = last_slo_export_us_.load(std::memory_order_relaxed);
    if (now_us - last >= 100000 &&
        last_slo_export_us_.compare_exchange_strong(last, now_us,
                                                    std::memory_order_relaxed)) {
      slo_.ExportGauges(now_us);
    }
  }
  p.promise.set_value(std::move(resp));
}

void ServeEngine::ProcessBatch(std::vector<Pending> batch) {
  Clock::time_point drained = Clock::now();
  for (auto& p : batch) {
    p.drained = drained;  // end of queue wait for every member of this batch
  }
  if (obs::Enabled()) {
    BatchHist().Observe(static_cast<double>(batch.size()));
  }

  // Per-slot resolution: program + cache lookup. Slots that error out or hit
  // the cache are fulfilled immediately and excluded from inference.
  struct Slot {
    Pending* pending = nullptr;
    Program program;
    std::unique_ptr<NfInstance> lowered;
    NfPrediction prediction;
    uint64_t program_hash = 0;
    uint64_t workload_hash = 0;
  };
  std::vector<Slot> live;
  live.reserve(batch.size());

  for (auto& p : batch) {
    if (p.has_deadline && Clock::now() > p.deadline) {
      Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kDeadlineExceeded,
                               "deadline expired before dispatch"));
      continue;
    }
    Slot slot;
    slot.pending = &p;
    StageSpan parse_span{"serve.parse", Clock::now(), {}};
    if (!p.req.source.empty()) {
      ParseResult parsed = ParseProgram(p.req.source);
      if (!parsed.ok) {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kParseError, parsed.error));
        continue;
      }
      CheckResult check = CheckProgram(parsed.program);
      if (!check.ok) {
        std::string msg = "program failed type check:";
        for (const auto& e : check.errors) {
          msg += " " + e + ";";
        }
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kCheckFailed, msg));
        continue;
      }
      slot.program = std::move(parsed.program);
    } else {
      const ElementInfo* info = nullptr;
      for (const auto& e : ElementRegistry()) {
        if (e.name == p.req.element) {
          info = &e;
          break;
        }
      }
      if (info == nullptr) {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kUnknownElement,
                                 "element '" + p.req.element + "' not in registry"));
        continue;
      }
      slot.program = info->make();
    }
    parse_span.end = Clock::now();
    p.spans.push_back(parse_span);

    slot.program_hash = Fnv1a64(ToSource(slot.program));
    slot.workload_hash = HashWorkload(p.req.workload);
    std::string cached = CacheGet(slot.program_hash, slot.workload_hash);
    if (!cached.empty()) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("serve.cache.hits").Add(1);
      }
      // Byte-identical replay of the cached body; only the id envelope
      // differs per request.
      p.cache_hit = true;
      StageSpan encode_span{"serve.encode", Clock::now(), {}};
      std::string payload = EncodeResponseWithBody(p.req.id, cached);
      InsightResponse resp;
      std::string err;
      bool ok = ParseResponse(payload, &resp, &err);
      encode_span.end = Clock::now();
      p.spans.push_back(encode_span);
      if (ok) {
        Fulfill(p, std::move(resp));
      } else {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kInternal, "cache decode: " + err));
      }
      continue;
    }
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.cache.misses").Add(1);
    }

    slot.lowered = std::make_unique<NfInstance>(CloneProgram(slot.program));
    if (!slot.lowered->ok()) {
      Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kCheckFailed,
                               "lowering failed: " + slot.lowered->error()));
      continue;
    }
    live.push_back(std::move(slot));
  }
  if (live.empty()) {
    return;
  }

  // Micro-batched inference: one flattened (slot, block) parallel map across
  // the whole batch, mirroring InstructionPredictor::PredictNf per slot.
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t s = 0; s < live.size(); ++s) {
    const Module& m = live[s].lowered->module();
    size_t blocks = m.functions.at(0).blocks.size();
    for (size_t b = 0; b < blocks; ++b) {
      pairs.emplace_back(s, b);
    }
  }
  const InstructionPredictor& predictor = analyzer_.predictor();
  Clock::time_point infer_start = Clock::now();
  std::vector<BlockPrediction> block_preds = ParallelMap<BlockPrediction>(pairs.size(), [&](size_t i) {
    const auto& [s, b] = pairs[i];
    const Module& m = live[s].lowered->module();
    return predictor.PredictBlock(m, m.functions.at(0).blocks[b]);
  });
  Clock::time_point infer_end = Clock::now();
  // Inference is batch-wide: attribute the shared interval to every live slot
  // (each request's LSTM work overlapped the whole parallel map).
  for (auto& slot : live) {
    slot.pending->spans.push_back(StageSpan{"serve.infer", infer_start, infer_end});
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    NfPrediction& pred = live[pairs[i].first].prediction;
    const BlockPrediction& bp = block_preds[i];
    pred.total_compute += bp.compute;
    pred.total_mem_state += bp.mem_state;
    pred.blocks.push_back(bp);
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("serve.batch.blocks", obs::Histogram::ExponentialBuckets(1, 2, 16))
        .Observe(static_cast<double>(pairs.size()));
  }

  // Full analysis per live slot with the precomputed predictions.
  for (auto& slot : live) {
    Pending& p = *slot.pending;
    StageSpan analyze_span{"serve.analyze", Clock::now(), {}};
    OffloadingInsights insights =
        analyzer_.Analyze(std::move(slot.program), p.req.workload, &slot.prediction);
    InsightResponse resp;
    resp.id = p.req.id;
    resp.nf_name = insights.nf_name;
    resp.accelerator = AccelClassName(insights.accelerator);
    resp.suggested_cores = insights.suggested_cores;
    resp.total_compute = insights.prediction.total_compute;
    resp.total_mem_state = insights.prediction.total_mem_state;
    resp.naive_mpps = insights.naive_perf.throughput_mpps;
    resp.naive_us = insights.naive_perf.latency_us;
    resp.tuned_mpps = insights.tuned_perf.throughput_mpps;
    resp.tuned_us = insights.tuned_perf.latency_us;
    resp.rendered = insights.ToString(opts_.nic);
    analyze_span.end = Clock::now();
    p.spans.push_back(analyze_span);
    StageSpan encode_span{"serve.encode", analyze_span.end, {}};
    CachePut(slot.program_hash, slot.workload_hash, EncodeResponseBody(resp));
    encode_span.end = Clock::now();
    p.spans.push_back(encode_span);
    Fulfill(p, std::move(resp));
  }
}

std::string ServeEngine::CacheGet(uint64_t program_hash, uint64_t workload_hash) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(MixKey(program_hash, workload_hash));
  if (it == cache_.end() || it->second->key_hi != program_hash ||
      it->second->key_lo != workload_hash) {
    return std::string();
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return it->second->body;
}

void ServeEngine::CachePut(uint64_t program_hash, uint64_t workload_hash, std::string body) {
  if (opts_.cache_capacity == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  uint64_t key = MixKey(program_hash, workload_hash);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second->body = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{program_hash, workload_hash, std::move(body)});
  cache_[key] = lru_.begin();
  while (lru_.size() > opts_.cache_capacity) {
    const CacheEntry& victim = lru_.back();
    cache_.erase(MixKey(victim.key_hi, victim.key_lo));
    lru_.pop_back();
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.cache.entries")
        .Set(static_cast<double>(lru_.size()));
  }
}

size_t ServeEngine::cache_entries() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return lru_.size();
}

obs::SloTracker::Window ServeEngine::SloWindow() const { return slo_.Snapshot(NowUs()); }

std::string ServeEngine::StatsJson() const {
  // Envelope so load tests can verify which inference path they measured;
  // the metrics registry dump keeps its shape under "metrics". stats_version
  // marks the envelope schema: 1 was the bare registry dump, 2 nests it.
  std::string j = "{";
  j += "\"stats_version\":2,";
  j += "\"infer\":\"" + std::string(InferBackendName(analyzer_.infer_backend())) + "\",";
  j += "\"simd\":\"" + simd::FeatureString() + "\",";
  j += "\"metrics\":" + obs::MetricsRegistry::Global().ToJson();
  j += "}";
  return j;
}

std::string ServeEngine::HealthJson() const {
  uint64_t requests = requests_.load(std::memory_order_relaxed);
  uint64_t errors = errors_.load(std::memory_order_relaxed);
  uint64_t hits = cache_hits_.load(std::memory_order_relaxed);
  uint64_t misses = cache_misses_.load(std::memory_order_relaxed);
  size_t depth = 0;
  bool running = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
    running = running_;
  }
  obs::SloTracker::Window slo = SloWindow();
  double hit_rate = hits + misses > 0
                        ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                        : 0.0;
  std::string j = "{";
  j += "\"status\":\"" + std::string(slo.degraded ? "degraded" : "ok") + "\",";
  j += "\"running\":" + std::string(running ? "true" : "false") + ",";
  j += "\"uptime_ms\":" + std::to_string(NowUs() / 1000) + ",";
  j += "\"artifact_version\":" + std::to_string(kArtifactVersion) + ",";
  j += "\"infer\":\"" + std::string(InferBackendName(analyzer_.infer_backend())) + "\",";
  j += "\"simd\":\"" + simd::FeatureString() + "\",";
  j += "\"queue_depth\":" + std::to_string(depth) + ",";
  j += "\"queue_capacity\":" + std::to_string(opts_.queue_capacity) + ",";
  j += "\"requests\":" + std::to_string(requests) + ",";
  j += "\"errors\":" + std::to_string(errors) + ",";
  j += "\"cache\":{\"entries\":" + std::to_string(cache_entries()) +
       ",\"capacity\":" + std::to_string(opts_.cache_capacity) +
       ",\"hits\":" + std::to_string(hits) + ",\"misses\":" + std::to_string(misses) +
       ",\"hit_rate\":" + obs::JsonNumber(hit_rate) + "},";
  j += "\"slo\":{\"window_requests\":" + std::to_string(slo.count) +
       ",\"p50_us\":" + obs::JsonNumber(slo.p50_us) +
       ",\"p90_us\":" + obs::JsonNumber(slo.p90_us) +
       ",\"p99_us\":" + obs::JsonNumber(slo.p99_us) +
       ",\"p99_threshold_us\":" + obs::JsonNumber(opts_.slo_p99_us) +
       ",\"error_rate\":" + obs::JsonNumber(slo.error_rate) +
       ",\"overrun_rate\":" + obs::JsonNumber(slo.overrun_rate) +
       ",\"degraded\":" + std::string(slo.degraded ? "true" : "false") + "}";
  j += "}";
  return j;
}

std::string ServeEngine::DumpJson() const { return flight_.ToJson(); }

std::string ServeEngine::HandleControl(std::string_view payload) {
  ControlRequest req;
  std::string err;
  ControlResponse resp;
  if (!ParseControlRequest(payload, &req, &err)) {
    resp.ok = false;
    resp.error = err;
    return EncodeControlResponse(resp);
  }
  resp.op = req.op;
  resp.ok = true;
  switch (req.op) {
    case ControlOp::kStats:
      resp.json = StatsJson();
      break;
    case ControlOp::kHealth:
      resp.json = HealthJson();
      break;
    case ControlOp::kDump:
      resp.json = DumpJson();
      break;
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter("serve.control.requests").Add(1);
  }
  return EncodeControlResponse(resp);
}

}  // namespace serve
}  // namespace clara
