#include "src/serve/server.h"

#include <algorithm>
#include <utility>

#include "src/elements/elements.h"
#include "src/lang/check.h"
#include "src/lang/interp.h"
#include "src/lang/parse.h"
#include "src/lang/printer.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/synth/algorithm_corpus.h"
#include "src/util/binio.h"
#include "src/util/parallel.h"

namespace clara {
namespace serve {
namespace {

uint64_t MixKey(uint64_t program_hash, uint64_t workload_hash) {
  return program_hash ^ (workload_hash * 0x9E3779B97F4A7C15ULL);
}

obs::Histogram& LatencyHist() {
  return obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us", obs::Histogram::ExponentialBuckets(1, 2, 32));
}

obs::Histogram& BatchHist() {
  return obs::MetricsRegistry::Global().GetHistogram(
      "serve.batch.size", obs::Histogram::LinearBuckets(1, 1, 16));
}

InsightResponse ErrorResponse(uint64_t id, ErrorCode code, std::string message) {
  InsightResponse resp;
  resp.id = id;
  resp.error = code;
  resp.error_message = std::move(message);
  return resp;
}

AnalyzerOptions MakeAnalyzerOptions(const ServeOptions& opts) {
  AnalyzerOptions a;
  a.nic = opts.nic;
  a.profile_packets = opts.profile_packets;
  return a;
}

}  // namespace

ServeEngine::ServeEngine(TrainedBundle bundle, ServeOptions opts)
    : opts_(opts), analyzer_(MakeAnalyzerOptions(opts), std::move(bundle)) {}

ServeEngine::~ServeEngine() { Stop(); }

void ServeEngine::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return;
  }
  stop_ = false;
  running_ = true;
  dispatcher_ = std::thread([this] { Loop(); });
}

void ServeEngine::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
    leftovers.swap(queue_);
  }
  for (auto& p : leftovers) {
    p.promise.set_value(
        ErrorResponse(p.req.id, ErrorCode::kShutdown, "engine stopped before dispatch"));
  }
}

std::future<InsightResponse> ServeEngine::Submit(InsightRequest req) {
  Pending p;
  p.req = std::move(req);
  p.enqueued = Clock::now();
  if (p.req.deadline_ms > 0) {
    p.has_deadline = true;
    p.deadline = p.enqueued + std::chrono::milliseconds(p.req.deadline_ms);
  }
  std::future<InsightResponse> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= opts_.queue_capacity) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("serve.queue.rejected").Add(1);
      }
      p.promise.set_value(ErrorResponse(
          p.req.id, ErrorCode::kQueueFull,
          "queue at capacity (" + std::to_string(opts_.queue_capacity) + ")"));
      return fut;
    }
    queue_.push_back(std::move(p));
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetGauge("serve.queue.depth")
          .Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
  return fut;
}

InsightResponse ServeEngine::Handle(InsightRequest req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      // Inline single-request path (no dispatcher): still exercises the full
      // batch pipeline.
      Pending p;
      p.req = std::move(req);
      p.enqueued = Clock::now();
      if (p.req.deadline_ms > 0) {
        p.has_deadline = true;
        p.deadline = p.enqueued + std::chrono::milliseconds(p.req.deadline_ms);
      }
      std::future<InsightResponse> fut = p.promise.get_future();
      std::vector<Pending> batch;
      batch.push_back(std::move(p));
      ProcessBatch(std::move(batch));
      return fut.get();
    }
  }
  return Submit(std::move(req)).get();
}

std::string ServeEngine::HandlePayload(std::string_view payload) {
  InsightRequest req;
  std::string err;
  if (!ParseRequest(payload, &req, &err)) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.requests.malformed").Add(1);
    }
    return EncodeResponse(ErrorResponse(0, ErrorCode::kBadRequest, err));
  }
  return EncodeResponse(Handle(std::move(req)));
}

std::string ServeEngine::EncodeTransportError(ErrorCode code, const std::string& message) {
  return EncodeResponse(ErrorResponse(0, code, message));
}

void ServeEngine::Loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        return;  // leftovers answered by Stop()
      }
      size_t take = std::min(opts_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global()
            .GetGauge("serve.queue.depth")
            .Set(static_cast<double>(queue_.size()));
      }
    }
    ProcessBatch(std::move(batch));
  }
}

void ServeEngine::Fulfill(Pending& p, InsightResponse resp) {
  Clock::time_point now = Clock::now();
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
    reg.GetCounter("serve.requests").Add(1);
    if (resp.error != ErrorCode::kOk) {
      reg.GetCounter("serve.errors").Add(1);
    }
    double us = std::chrono::duration_cast<std::chrono::nanoseconds>(now - p.enqueued)
                    .count() /
                1e3;
    LatencyHist().Observe(us);
    if (p.has_deadline && now > p.deadline && resp.error == ErrorCode::kOk) {
      reg.GetCounter("serve.deadline.overruns").Add(1);
    }
  }
  p.promise.set_value(std::move(resp));
}

void ServeEngine::ProcessBatch(std::vector<Pending> batch) {
  if (obs::Enabled()) {
    BatchHist().Observe(static_cast<double>(batch.size()));
  }

  // Per-slot resolution: program + cache lookup. Slots that error out or hit
  // the cache are fulfilled immediately and excluded from inference.
  struct Slot {
    Pending* pending = nullptr;
    Program program;
    std::unique_ptr<NfInstance> lowered;
    NfPrediction prediction;
    uint64_t program_hash = 0;
    uint64_t workload_hash = 0;
  };
  std::vector<Slot> live;
  live.reserve(batch.size());

  for (auto& p : batch) {
    if (p.has_deadline && Clock::now() > p.deadline) {
      Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kDeadlineExceeded,
                               "deadline expired before dispatch"));
      continue;
    }
    Slot slot;
    slot.pending = &p;
    if (!p.req.source.empty()) {
      ParseResult parsed = ParseProgram(p.req.source);
      if (!parsed.ok) {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kParseError, parsed.error));
        continue;
      }
      CheckResult check = CheckProgram(parsed.program);
      if (!check.ok) {
        std::string msg = "program failed type check:";
        for (const auto& e : check.errors) {
          msg += " " + e + ";";
        }
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kCheckFailed, msg));
        continue;
      }
      slot.program = std::move(parsed.program);
    } else {
      const ElementInfo* info = nullptr;
      for (const auto& e : ElementRegistry()) {
        if (e.name == p.req.element) {
          info = &e;
          break;
        }
      }
      if (info == nullptr) {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kUnknownElement,
                                 "element '" + p.req.element + "' not in registry"));
        continue;
      }
      slot.program = info->make();
    }

    slot.program_hash = Fnv1a64(ToSource(slot.program));
    slot.workload_hash = HashWorkload(p.req.workload);
    std::string cached = CacheGet(slot.program_hash, slot.workload_hash);
    if (!cached.empty()) {
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("serve.cache.hits").Add(1);
      }
      // Byte-identical replay of the cached body; only the id envelope
      // differs per request.
      std::string payload = EncodeResponseWithBody(p.req.id, cached);
      InsightResponse resp;
      std::string err;
      if (ParseResponse(payload, &resp, &err)) {
        Fulfill(p, std::move(resp));
      } else {
        Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kInternal, "cache decode: " + err));
      }
      continue;
    }
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global().GetCounter("serve.cache.misses").Add(1);
    }

    slot.lowered = std::make_unique<NfInstance>(CloneProgram(slot.program));
    if (!slot.lowered->ok()) {
      Fulfill(p, ErrorResponse(p.req.id, ErrorCode::kCheckFailed,
                               "lowering failed: " + slot.lowered->error()));
      continue;
    }
    live.push_back(std::move(slot));
  }
  if (live.empty()) {
    return;
  }

  // Micro-batched inference: one flattened (slot, block) parallel map across
  // the whole batch, mirroring InstructionPredictor::PredictNf per slot.
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t s = 0; s < live.size(); ++s) {
    const Module& m = live[s].lowered->module();
    size_t blocks = m.functions.at(0).blocks.size();
    for (size_t b = 0; b < blocks; ++b) {
      pairs.emplace_back(s, b);
    }
  }
  const InstructionPredictor& predictor = analyzer_.predictor();
  std::vector<BlockPrediction> block_preds = ParallelMap<BlockPrediction>(pairs.size(), [&](size_t i) {
    const auto& [s, b] = pairs[i];
    const Module& m = live[s].lowered->module();
    return predictor.PredictBlock(m, m.functions.at(0).blocks[b]);
  });
  for (size_t i = 0; i < pairs.size(); ++i) {
    NfPrediction& pred = live[pairs[i].first].prediction;
    const BlockPrediction& bp = block_preds[i];
    pred.total_compute += bp.compute;
    pred.total_mem_state += bp.mem_state;
    pred.blocks.push_back(bp);
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetHistogram("serve.batch.blocks", obs::Histogram::ExponentialBuckets(1, 2, 16))
        .Observe(static_cast<double>(pairs.size()));
  }

  // Full analysis per live slot with the precomputed predictions.
  for (auto& slot : live) {
    Pending& p = *slot.pending;
    OffloadingInsights insights =
        analyzer_.Analyze(std::move(slot.program), p.req.workload, &slot.prediction);
    InsightResponse resp;
    resp.id = p.req.id;
    resp.nf_name = insights.nf_name;
    resp.accelerator = AccelClassName(insights.accelerator);
    resp.suggested_cores = insights.suggested_cores;
    resp.total_compute = insights.prediction.total_compute;
    resp.total_mem_state = insights.prediction.total_mem_state;
    resp.naive_mpps = insights.naive_perf.throughput_mpps;
    resp.naive_us = insights.naive_perf.latency_us;
    resp.tuned_mpps = insights.tuned_perf.throughput_mpps;
    resp.tuned_us = insights.tuned_perf.latency_us;
    resp.rendered = insights.ToString(opts_.nic);
    CachePut(slot.program_hash, slot.workload_hash, EncodeResponseBody(resp));
    Fulfill(p, std::move(resp));
  }
}

std::string ServeEngine::CacheGet(uint64_t program_hash, uint64_t workload_hash) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_.find(MixKey(program_hash, workload_hash));
  if (it == cache_.end() || it->second->key_hi != program_hash ||
      it->second->key_lo != workload_hash) {
    return std::string();
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
  return it->second->body;
}

void ServeEngine::CachePut(uint64_t program_hash, uint64_t workload_hash, std::string body) {
  if (opts_.cache_capacity == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  uint64_t key = MixKey(program_hash, workload_hash);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    it->second->body = std::move(body);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(CacheEntry{program_hash, workload_hash, std::move(body)});
  cache_[key] = lru_.begin();
  while (lru_.size() > opts_.cache_capacity) {
    const CacheEntry& victim = lru_.back();
    cache_.erase(MixKey(victim.key_hi, victim.key_lo));
    lru_.pop_back();
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetGauge("serve.cache.entries")
        .Set(static_cast<double>(lru_.size()));
  }
}

size_t ServeEngine::cache_entries() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return lru_.size();
}

}  // namespace serve
}  // namespace clara
