#include "src/serve/brownout.h"

namespace clara {
namespace serve {

bool BrownoutPolicy::Update(int64_t now_us, double p99_us, uint64_t window_count) {
  if (opts_.enter_threshold_us <= 0 || window_count == 0) {
    return active_;
  }
  if (!active_) {
    if (p99_us > opts_.enter_threshold_us) {
      active_ = true;
      ++entered_;
      calm_since_us_ = -1;
    }
    return active_;
  }
  // Active: look for a sustained calm streak below the exit threshold.
  double exit_below_us = opts_.exit_margin * opts_.enter_threshold_us;
  if (p99_us >= exit_below_us) {
    calm_since_us_ = -1;  // streak broken
    return active_;
  }
  if (calm_since_us_ < 0) {
    calm_since_us_ = now_us;
  }
  if (now_us - calm_since_us_ >= opts_.exit_hold_us) {
    active_ = false;
    ++exited_;
    calm_since_us_ = -1;
  }
  return active_;
}

}  // namespace serve
}  // namespace clara
