// Multi-client epoll transport for the Clara insight-serving daemon.
//
// The sequential transport in tools/clara_serve.cc serves one connection to
// completion before accepting the next; this event loop serves an arbitrary
// number of clients concurrently over one Unix domain socket:
//
//   * A non-blocking listener plus one epoll instance (level-triggered) own
//     every fd. Each accepted connection carries its own FrameReader, so
//     partial frames interleaved across connections reassemble independently
//     — a client dribbling one byte at a time never stalls anyone else.
//   * A sharded worker pool bridges the loop to the ServeEngine admission
//     queue: complete insight frames are handed to the connection's shard
//     (shard = connection id % shards), which parses, Submit()s, waits on
//     the futures, and appends the encoded responses to the connection's
//     outbound buffer. Pinning a connection to one shard preserves
//     per-connection response ordering while separate connections proceed in
//     parallel; the engine still micro-batches across shards because
//     Submit() is the shared funnel.
//   * Control frames (stats/health/dump/reload) are answered inline on the
//     loop thread, ahead of everything queued — the control plane stays
//     responsive when the request queue is saturated.
//   * Writes are buffered per connection and flushed with non-blocking
//     send(): EAGAIN arms EPOLLOUT and the flush resumes when the socket
//     drains. A client that stops reading while responses pile up past
//     max_outbound_bytes is disconnected (slow-client backpressure) rather
//     than allowed to grow the buffer without bound.
//   * Connection-count and fd-churn gauges (serve.conn.active/accepted/
//     closed/...) feed the obs registry, and StatsJson() renders the same
//     numbers as the "transport" object of the stats envelope.
//
// The loop thread owns fds and the epoll set exclusively; workers only touch
// a connection's outbound buffer (under its mutex) and wake the loop through
// an eventfd. Fault-injection sites sock.accept/sock.read/sock.write behave
// as in the sequential transport: an injected fault costs that connection,
// never the daemon.
#ifndef SRC_SERVE_EVENTLOOP_H_
#define SRC_SERVE_EVENTLOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/serve/proto.h"
#include "src/serve/server.h"

namespace clara {
namespace serve {

struct EventLoopOptions {
  std::string socket_path;
  // Worker threads bridging frames to ServeEngine::Submit(). 0 = auto
  // (min(4, hardware_concurrency/2), at least 1).
  size_t shards = 0;
  // Per-connection outbound buffer cap; exceeding it disconnects the client
  // (slow-reader backpressure).
  size_t max_outbound_bytes = 4u << 20;
  // Connections beyond this are accepted and immediately closed.
  size_t max_connections = 1024;
  int listen_backlog = 128;
};

class EventLoop {
 public:
  // The engine must outlive the loop. Init() must succeed before Run().
  EventLoop(ServeEngine& engine, EventLoopOptions opts);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Binds + listens on opts.socket_path and creates the epoll/eventfd set.
  // The caller is responsible for socket-path ownership (pidfile) before
  // calling this: Init() unlinks a pre-existing socket file.
  bool Init(std::string* error);

  // Serves until *stop becomes nonzero (or a fatal listener error). The flag
  // is an atomic<int> so both a signal handler (lock-free stores are
  // async-signal-safe) and a test thread can set it. `tick` runs on the loop
  // thread at least every ~100 ms and after every signal interruption — the
  // daemon polls its signal flags there. Returns 0 on a clean stop. Joins
  // the shard workers and closes every fd before returning; the listener
  // socket file is unlinked.
  int Run(const std::atomic<int>* stop, const std::function<void()>& tick = {});

  // Transport stats as one JSON object (the stats envelope's "transport").
  std::string StatsJson() const;

  size_t shards() const { return nshards_; }
  uint64_t accepted() const { return accepted_.load(std::memory_order_relaxed); }
  uint64_t closed() const { return closed_.load(std::memory_order_relaxed); }
  uint64_t active() const { return active_.load(std::memory_order_relaxed); }
  uint64_t slow_disconnects() const {
    return slow_disconnects_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t rejected() const { return rejected_.load(std::memory_order_relaxed); }

 private:
  // Per-connection state. The loop thread owns fd/reader/epoll membership;
  // `out_mu` guards everything a shard worker may touch.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    size_t shard = 0;

    FrameReader reader;  // loop thread only

    std::mutex out_mu;
    std::string outbound;     // encoded response frames awaiting flush
    size_t in_flight = 0;     // shard tasks not yet appended
    bool closed = false;      // loop closed the fd; workers drop output
    bool overflow = false;    // outbound cap blown; loop disconnects
    bool read_closed = false; // peer half-closed; close once drained
    bool want_write = false;  // EPOLLOUT armed
  };

  // One batch of complete frames read from a connection in a single drain,
  // processed in order by the connection's shard.
  struct Task {
    std::shared_ptr<Conn> conn;
    std::vector<std::string> frames;
  };

  void WorkerLoop(size_t shard);
  void ProcessTask(Task task);

  void HandleListener();
  void HandleConnReadable(const std::shared_ptr<Conn>& conn);
  void HandleConnWritable(const std::shared_ptr<Conn>& conn);
  void DrainCompletions();

  // Appends bytes to conn->outbound (any thread); returns false when the
  // connection is closed or the append blew the outbound cap.
  bool AppendOutbound(const std::shared_ptr<Conn>& conn, std::string_view bytes);
  // Non-blocking flush; arms/disarms EPOLLOUT as needed. Loop thread only.
  void FlushConn(const std::shared_ptr<Conn>& conn);
  // Closes the fd and forgets the connection. Loop thread only.
  void CloseConn(const std::shared_ptr<Conn>& conn, bool error, bool slow);
  // Closes once the peer hung up, nothing is in flight and the buffer
  // drained. Loop thread only.
  void MaybeFinishConn(const std::shared_ptr<Conn>& conn);
  void NotifyLoop(const std::shared_ptr<Conn>& conn);
  void UpdateEpollInterest(const std::shared_ptr<Conn>& conn);

  ServeEngine& engine_;
  EventLoopOptions opts_;
  size_t nshards_ = 1;

  int listener_ = -1;
  int epoll_ = -1;
  int wake_ = -1;  // eventfd: shard workers -> loop
  uint64_t next_conn_id_ = 0;
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  // loop thread only

  // Shard queues. One mutex per shard keeps connections on different shards
  // fully independent.
  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> tasks;
  };
  std::vector<std::unique_ptr<Shard>> shard_q_;
  std::vector<std::thread> workers_;
  std::atomic<bool> workers_stop_{false};

  // Completion queue: connections whose outbound changed (or whose in-flight
  // count dropped) since the loop last looked.
  std::mutex comp_mu_;
  std::vector<std::shared_ptr<Conn>> completions_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> closed_{0};
  std::atomic<uint64_t> active_{0};
  std::atomic<uint64_t> peak_active_{0};
  std::atomic<uint64_t> slow_disconnects_{0};
  std::atomic<uint64_t> dropped_{0};   // closed on error / injected fault
  std::atomic<uint64_t> rejected_{0};  // over max_connections
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> oversized_{0};
};

}  // namespace serve
}  // namespace clara

#endif  // SRC_SERVE_EVENTLOOP_H_
