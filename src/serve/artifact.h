// Versioned, checksummed model artifact store.
//
// A trained Clara bundle (LSTM+FC instruction predictor, SVM algorithm
// identifier, GBDT scale-out and colocation models, vocabulary, synthesis
// profile) is serialized into a single framed binary:
//
//   "CLRB" magic | u16 format version | u32 CRC-32 of payload | u32 payload
//   size | payload (TrainedBundle::SaveTo encoding)
//
// followed by an optional quantized-weights frame (same shape, emitted by
// default since the int8 serve path landed):
//
//   "CLRQ" magic | u16 frame version | u32 CRC-32 of payload | u32 payload
//   size | payload (Int8LstmParams::SaveTo encoding)
//
// The quantized frame is backward/forward compatible: pre-frame artifacts
// (nothing after the main payload) still load, and the server quantizes the
// f64 weights at SetInferBackend time instead — deterministically, so the
// result is byte-identical to what the frame would have carried. When the
// frame IS present it must be complete and CRC-clean; a truncated or
// corrupted trailer rejects the whole artifact rather than silently serving
// different weights.
//
// Loading verifies magic, version, size, and checksum before touching the
// payload, and the payload decoder is fully bounds-checked — truncated,
// corrupted, or version-bumped artifacts are rejected with a descriptive
// error, never a crash. Round trips are bit-identical, so a loaded bundle
// predicts exactly what the trained one did.
#ifndef SRC_SERVE_ARTIFACT_H_
#define SRC_SERVE_ARTIFACT_H_

#include <string>
#include <string_view>

#include "src/core/analyzer.h"

namespace clara {
namespace serve {

inline constexpr char kArtifactMagic[4] = {'C', 'L', 'R', 'B'};
inline constexpr uint16_t kArtifactVersion = 1;
inline constexpr char kQuantMagic[4] = {'C', 'L', 'R', 'Q'};
inline constexpr uint16_t kQuantVersion = 1;

// Artifact file name inside a --model-dir.
std::string BundlePath(const std::string& model_dir);

// Serializes the bundle with the artifact frame (magic/version/CRC).
// `include_quantized` == false reproduces the pre-frame (legacy) format;
// tests use it to pin backward compatibility.
std::string SerializeBundle(const TrainedBundle& bundle);
std::string SerializeBundle(const TrainedBundle& bundle, bool include_quantized);

// Verifies the frame and decodes the payload. On failure returns false and
// sets *error; *bundle is left untouched.
bool DeserializeBundle(std::string_view data, TrainedBundle* bundle, std::string* error);

// File convenience wrappers (binary I/O; *error set on failure).
bool SaveBundleFile(const std::string& path, const TrainedBundle& bundle,
                    std::string* error);
bool LoadBundleFile(const std::string& path, TrainedBundle* bundle, std::string* error);

}  // namespace serve
}  // namespace clara

#endif  // SRC_SERVE_ARTIFACT_H_
