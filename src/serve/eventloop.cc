#include "src/serve/eventloop.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/util/fault.h"

namespace clara {
namespace serve {

namespace {

size_t AutoShards() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 2;
  }
  return std::max<size_t>(1, std::min<size_t>(4, hw / 2));
}

void BumpCounter(const char* name) {
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter(name).Add(1);
  }
}

void MoveGauge(const char* name, double delta) {
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetGauge(name).Add(delta);
  }
}

}  // namespace

EventLoop::EventLoop(ServeEngine& engine, EventLoopOptions opts)
    : engine_(engine), opts_(std::move(opts)) {
  nshards_ = opts_.shards == 0 ? AutoShards() : opts_.shards;
}

EventLoop::~EventLoop() {
  if (listener_ >= 0) {
    ::close(listener_);
    ::unlink(opts_.socket_path.c_str());
  }
  if (epoll_ >= 0) {
    ::close(epoll_);
  }
  if (wake_ >= 0) {
    ::close(wake_);
  }
}

bool EventLoop::Init(std::string* error) {
  listener_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listener_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + opts_.socket_path;
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  std::strncpy(addr.sun_path, opts_.socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(opts_.socket_path.c_str());  // stale socket (pidfile held by caller)
  if (::bind(listener_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener_, opts_.listen_backlog) < 0) {
    *error = "bind/listen " + opts_.socket_path + ": " + std::strerror(errno);
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  epoll_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_ < 0 || wake_ < 0) {
    *error = std::string("epoll/eventfd: ") + std::strerror(errno);
    return false;
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = listener_;
  if (::epoll_ctl(epoll_, EPOLL_CTL_ADD, listener_, &ev) < 0) {
    *error = std::string("epoll_ctl(listener): ") + std::strerror(errno);
    return false;
  }
  ev.data.fd = wake_;
  if (::epoll_ctl(epoll_, EPOLL_CTL_ADD, wake_, &ev) < 0) {
    *error = std::string("epoll_ctl(eventfd): ") + std::strerror(errno);
    return false;
  }
  shard_q_.clear();
  for (size_t i = 0; i < nshards_; ++i) {
    shard_q_.push_back(std::make_unique<Shard>());
  }
  return true;
}

void EventLoop::NotifyLoop(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    completions_.push_back(conn);
  }
  uint64_t one = 1;
  // The eventfd counter saturates rather than blocks; a failed write only
  // delays the flush to the next epoll timeout tick.
  (void)!::write(wake_, &one, sizeof(one));
}

void EventLoop::WorkerLoop(size_t shard) {
  Shard& q = *shard_q_[shard];
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(q.mu);
      q.cv.wait(lock, [&] {
        return !q.tasks.empty() || workers_stop_.load(std::memory_order_acquire);
      });
      if (q.tasks.empty()) {
        return;  // stop requested and the queue is drained
      }
      task = std::move(q.tasks.front());
      q.tasks.pop_front();
    }
    ProcessTask(std::move(task));
  }
}

void EventLoop::ProcessTask(Task task) {
  // Mirror of the sequential transport's per-read-batch handling: parse
  // failures answer immediately, everything else is Submit()ed together so
  // the engine can micro-batch, and responses land in frame order.
  std::string out;
  std::vector<std::future<InsightResponse>> futures;
  for (const std::string& frame : task.frames) {
    InsightRequest req;
    std::string err;
    if (!ParseRequest(frame, &req, &err)) {
      AppendFrame(&out,
                  ServeEngine::EncodeTransportError(ErrorCode::kBadRequest, err));
      continue;
    }
    futures.push_back(
        engine_.Submit(std::move(req), static_cast<uint32_t>(frame.size())));
  }
  for (auto& f : futures) {
    AppendFrame(&out, EncodeResponse(f.get()));
  }

  const std::shared_ptr<Conn>& conn = task.conn;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    --conn->in_flight;
    if (!conn->closed) {
      conn->outbound += out;
      if (conn->outbound.size() > opts_.max_outbound_bytes) {
        conn->overflow = true;
      }
    }
  }
  NotifyLoop(conn);
}

bool EventLoop::AppendOutbound(const std::shared_ptr<Conn>& conn,
                               std::string_view bytes) {
  std::lock_guard<std::mutex> lock(conn->out_mu);
  if (conn->closed) {
    return false;
  }
  conn->outbound.append(bytes.data(), bytes.size());
  if (conn->outbound.size() > opts_.max_outbound_bytes) {
    conn->overflow = true;
    return false;
  }
  return true;
}

void EventLoop::UpdateEpollInterest(const std::shared_ptr<Conn>& conn) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = 0;
  if (!conn->read_closed) {
    ev.events |= EPOLLIN;
  }
  if (conn->want_write) {
    ev.events |= EPOLLOUT;
  }
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void EventLoop::FlushConn(const std::shared_ptr<Conn>& conn) {
  bool io_error = false;
  bool interest_changed = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    while (!conn->outbound.empty()) {
      if (fault::Armed() && fault::ShouldFail(fault::Site::kSockWrite)) {
        io_error = true;
        break;
      }
      ssize_t n = ::send(conn->fd, conn->outbound.data(), conn->outbound.size(),
                         MSG_NOSIGNAL);
      if (n > 0) {
        conn->outbound.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn->want_write) {
          conn->want_write = true;
          interest_changed = true;
        }
        break;
      }
      io_error = true;  // EPIPE/ECONNRESET/...: the client is gone
      break;
    }
    if (conn->outbound.empty() && conn->want_write) {
      conn->want_write = false;
      interest_changed = true;
    }
  }
  if (io_error) {
    CloseConn(conn, /*error=*/true, /*slow=*/false);
    return;
  }
  if (interest_changed) {
    UpdateEpollInterest(conn);
  }
}

void EventLoop::CloseConn(const std::shared_ptr<Conn>& conn, bool error, bool slow) {
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    conn->closed = true;
    conn->outbound.clear();
  }
  ::epoll_ctl(epoll_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  closed_.fetch_add(1, std::memory_order_relaxed);
  active_.fetch_sub(1, std::memory_order_relaxed);
  MoveGauge("serve.conn.active", -1);
  BumpCounter("serve.conn.closed");
  if (slow) {
    slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
    BumpCounter("serve.conn.slow_disconnect");
  } else if (error) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    BumpCounter("serve.conn.dropped");
  }
}

void EventLoop::MaybeFinishConn(const std::shared_ptr<Conn>& conn) {
  bool done;
  bool slow;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->closed) {
      return;
    }
    slow = conn->overflow;
    done = conn->read_closed && conn->in_flight == 0 && conn->outbound.empty();
  }
  if (slow) {
    CloseConn(conn, /*error=*/false, /*slow=*/true);
  } else if (done) {
    CloseConn(conn, /*error=*/false, /*slow=*/false);
  }
}

void EventLoop::HandleListener() {
  for (;;) {
    int fd = ::accept4(listener_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      // EMFILE/ENFILE/ECONNABORTED: transient; keep serving existing fds.
      return;
    }
    // Fault site sock.accept: the connection is dropped before a byte is
    // exchanged — the client sees a reset, the daemon serves the next one.
    if (fault::Armed() && fault::ShouldFail(fault::Site::kSockAccept)) {
      ::close(fd);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      BumpCounter("serve.conn.dropped");
      continue;
    }
    if (conns_.size() >= opts_.max_connections) {
      ::close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      BumpCounter("serve.conn.rejected");
      continue;
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->shard = conn->id % nshards_;
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_[fd] = conn;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    uint64_t act = active_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = peak_active_.load(std::memory_order_relaxed);
    while (act > peak &&
           !peak_active_.compare_exchange_weak(peak, act, std::memory_order_relaxed)) {
    }
    MoveGauge("serve.conn.active", 1);
    BumpCounter("serve.conn.accepted");
  }
}

void EventLoop::HandleConnReadable(const std::shared_ptr<Conn>& conn) {
  char buf[1 << 16];
  size_t drained = 0;
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      if (fault::Armed() && fault::ShouldFail(fault::Site::kSockRead)) {
        CloseConn(conn, /*error=*/true, /*slow=*/false);
        return;
      }
      conn->reader.Feed(buf, static_cast<size_t>(n));
      drained += static_cast<size_t>(n);
      // Fairness bound: with level-triggered epoll a still-readable fd shows
      // up again next iteration, so other connections get a turn.
      if (drained >= (1u << 18)) {
        break;
      }
      continue;
    }
    if (n == 0) {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      conn->read_closed = true;
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConn(conn, /*error=*/true, /*slow=*/false);
    return;
  }
  if (conn->read_closed) {
    UpdateEpollInterest(conn);
  }

  Task task;
  task.conn = conn;
  std::string inline_out;
  std::string frame;
  while (conn->reader.Next(&frame)) {
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    // Control-plane frames are answered inline on the loop thread, ahead of
    // anything queued: stats/health stay responsive under a saturated queue.
    if (PeekType(frame) == MsgType::kControlRequest) {
      AppendFrame(&inline_out, engine_.HandleControl(frame));
      continue;
    }
    task.frames.push_back(std::move(frame));
  }
  for (size_t i = conn->reader.TakeOversized(); i > 0; --i) {
    oversized_.fetch_add(1, std::memory_order_relaxed);
    AppendFrame(&inline_out,
                ServeEngine::EncodeTransportError(ErrorCode::kOversized,
                                                  "frame exceeds the 1 MiB limit"));
  }
  if (!inline_out.empty()) {
    AppendOutbound(conn, inline_out);
    FlushConn(conn);
  }
  if (!task.frames.empty()) {
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (conn->closed) {
        return;
      }
      ++conn->in_flight;
    }
    Shard& q = *shard_q_[conn->shard];
    {
      std::lock_guard<std::mutex> lock(q.mu);
      q.tasks.push_back(std::move(task));
    }
    q.cv.notify_one();
  }
  MaybeFinishConn(conn);
}

void EventLoop::HandleConnWritable(const std::shared_ptr<Conn>& conn) {
  FlushConn(conn);
  MaybeFinishConn(conn);
}

void EventLoop::DrainCompletions() {
  uint64_t junk;
  while (::read(wake_, &junk, sizeof(junk)) > 0) {
  }
  std::vector<std::shared_ptr<Conn>> ready;
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    ready.swap(completions_);
  }
  for (const auto& conn : ready) {
    FlushConn(conn);
    MaybeFinishConn(conn);
  }
}

int EventLoop::Run(const std::atomic<int>* stop, const std::function<void()>& tick) {
  workers_stop_.store(false, std::memory_order_release);
  workers_.clear();
  for (size_t i = 0; i < nshards_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }

  struct epoll_event events[64];
  while (stop->load(std::memory_order_acquire) == 0) {
    if (tick) {
      tick();
    }
    int n = ::epoll_wait(epoll_, events, 64, 100);
    if (n < 0) {
      if (errno == EINTR) {
        continue;  // signal: re-check stop and run the tick
      }
      std::fprintf(stderr, "clara_serve: epoll_wait: %s\n", std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t ev = events[i].events;
      if (fd == listener_) {
        HandleListener();
        continue;
      }
      if (fd == wake_) {
        DrainCompletions();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) {
        continue;  // closed earlier in this batch
      }
      std::shared_ptr<Conn> conn = it->second;
      if ((ev & EPOLLERR) != 0) {
        CloseConn(conn, /*error=*/true, /*slow=*/false);
        continue;
      }
      if ((ev & (EPOLLIN | EPOLLHUP)) != 0) {
        HandleConnReadable(conn);
        if (conns_.find(fd) == conns_.end()) {
          continue;
        }
      }
      if ((ev & EPOLLOUT) != 0) {
        HandleConnWritable(conn);
      }
    }
  }

  // Drain the shard queues (workers finish everything already handed to
  // them), give each connection one best-effort flush, then tear down.
  workers_stop_.store(true, std::memory_order_release);
  for (auto& s : shard_q_) {
    s->cv.notify_all();
  }
  for (auto& w : workers_) {
    w.join();
  }
  workers_.clear();
  DrainCompletions();
  std::vector<std::shared_ptr<Conn>> remaining;
  remaining.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) {
    remaining.push_back(conn);
  }
  for (const auto& conn : remaining) {
    FlushConn(conn);
  }
  for (const auto& conn : remaining) {
    CloseConn(conn, /*error=*/false, /*slow=*/false);
  }
  ::close(listener_);
  listener_ = -1;
  ::unlink(opts_.socket_path.c_str());
  return 0;
}

std::string EventLoop::StatsJson() const {
  std::string j = "{";
  j += "\"mode\":\"epoll\",";
  j += "\"shards\":" + std::to_string(nshards_) + ",";
  j += "\"conn_active\":" + std::to_string(active()) + ",";
  j += "\"conn_peak\":" +
       std::to_string(peak_active_.load(std::memory_order_relaxed)) + ",";
  j += "\"conn_accepted\":" + std::to_string(accepted()) + ",";
  j += "\"conn_closed\":" + std::to_string(closed()) + ",";
  j += "\"conn_rejected\":" + std::to_string(rejected()) + ",";
  j += "\"conn_dropped\":" + std::to_string(dropped()) + ",";
  j += "\"slow_disconnects\":" + std::to_string(slow_disconnects()) + ",";
  j += "\"frames_in\":" + std::to_string(frames_in_.load(std::memory_order_relaxed)) +
       ",";
  j += "\"oversized\":" + std::to_string(oversized_.load(std::memory_order_relaxed));
  j += "}";
  return j;
}

}  // namespace serve
}  // namespace clara
