#include "src/serve/artifact.h"

#include <cstdio>
#include <cstring>

#include "src/util/binio.h"
#include "src/util/fault.h"

namespace clara {
namespace serve {

std::string BundlePath(const std::string& model_dir) {
  if (model_dir.empty() || model_dir.back() == '/') {
    return model_dir + "clara_bundle.bin";
  }
  return model_dir + "/clara_bundle.bin";
}

std::string SerializeBundle(const TrainedBundle& bundle) {
  return SerializeBundle(bundle, /*include_quantized=*/true);
}

std::string SerializeBundle(const TrainedBundle& bundle, bool include_quantized) {
  BinWriter payload;
  bundle.SaveTo(payload);
  BinWriter frame;
  frame.Bytes(kArtifactMagic, sizeof(kArtifactMagic));
  frame.U16(kArtifactVersion);
  frame.U32(Crc32(payload.data()));
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.Bytes(payload.data().data(), payload.size());
  if (include_quantized) {
    // Deterministic quantization makes serialization a fixed point: a bundle
    // that attached this frame at load time re-emits it byte-identically.
    BinWriter qp;
    bundle.predictor.QuantizedParams().SaveTo(qp);
    frame.Bytes(kQuantMagic, sizeof(kQuantMagic));
    frame.U16(kQuantVersion);
    frame.U32(Crc32(qp.data()));
    frame.U32(static_cast<uint32_t>(qp.size()));
    frame.Bytes(qp.data().data(), qp.size());
  }
  return frame.Take();
}

namespace {

// Parses and attaches the optional trailing quantized frame. `tail` is
// everything after the main payload; empty tail == legacy artifact (ok).
// Any malformation is a hard error: a present-but-damaged frame must never
// degrade into "silently serve requantized weights".
bool AttachQuantFrame(std::string_view tail, TrainedBundle* bundle,
                      std::string* error) {
  if (tail.empty()) {
    return true;
  }
  BinReader r(tail);
  char magic[4];
  if (!r.Raw(magic, sizeof(magic)) || std::memcmp(magic, kQuantMagic, 4) != 0) {
    *error = "artifact: trailing bytes are not a quantized-weights frame";
    return false;
  }
  uint16_t version = r.U16();
  if (r.ok() && version != kQuantVersion) {
    *error = "artifact: quantized frame version " + std::to_string(version) +
             " unsupported (expected " + std::to_string(kQuantVersion) + ")";
    return false;
  }
  uint32_t crc = r.U32();
  uint32_t size = r.U32();
  if (!r.ok() || size != r.remaining()) {
    *error = "artifact: quantized frame truncated (payload size " +
             std::to_string(size) + ", remaining " +
             std::to_string(r.ok() ? r.remaining() : 0) + ")";
    return false;
  }
  std::string_view payload = tail.substr(r.offset());
  uint32_t actual = Crc32(payload);
  if (actual != crc) {
    char buf[80];
    std::snprintf(buf, sizeof(buf),
                  "artifact: quantized frame CRC mismatch (stored %08x, computed %08x)",
                  crc, actual);
    *error = buf;
    return false;
  }
  BinReader body(payload);
  Int8LstmParams quant;
  if (!quant.LoadFrom(body)) {
    *error = "artifact: " + body.error();
    return false;
  }
  std::string why;
  if (!bundle->predictor.AttachQuantized(std::move(quant), &why)) {
    *error = "artifact: " + why;
    return false;
  }
  return true;
}

}  // namespace

bool DeserializeBundle(std::string_view data, TrainedBundle* bundle, std::string* error) {
  // Fault site artifact.load: the whole deserialization fails as if the file
  // were unreadable — hot reload must reject and keep the live model.
  if (fault::Armed() && fault::ShouldFail(fault::Site::kArtifactLoad)) {
    *error = "artifact: injected fault (artifact.load)";
    return false;
  }
  BinReader r(data);
  char magic[4];
  if (!r.Raw(magic, sizeof(magic)) || std::memcmp(magic, kArtifactMagic, 4) != 0) {
    *error = "artifact: bad magic (not a Clara bundle)";
    return false;
  }
  uint16_t version = r.U16();
  if (r.ok() && version != kArtifactVersion) {
    *error = "artifact: format version " + std::to_string(version) +
             " unsupported (expected " + std::to_string(kArtifactVersion) + ")";
    return false;
  }
  uint32_t crc = r.U32();
  uint32_t size = r.U32();
  // Bytes beyond the main payload are the optional quantized frame, parsed
  // below; fewer bytes than the payload claims is a truncated artifact.
  if (!r.ok() || size > r.remaining()) {
    *error = "artifact: truncated (payload size " + std::to_string(size) +
             ", remaining " + std::to_string(r.ok() ? r.remaining() : 0) + ")";
    return false;
  }
  std::string_view payload = data.substr(r.offset(), size);
  uint32_t actual = Crc32(payload);
  // Fault site artifact.crc: report a checksum mismatch on an intact
  // payload, exercising the reject-and-keep-serving path.
  if (fault::Armed() && fault::ShouldFail(fault::Site::kArtifactCrc)) {
    actual = ~actual;
  }
  if (actual != crc) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "artifact: CRC mismatch (stored %08x, computed %08x)",
                  crc, actual);
    *error = buf;
    return false;
  }
  BinReader body(payload);
  TrainedBundle loaded;
  if (!loaded.LoadFrom(body)) {
    *error = "artifact: " + body.error();
    return false;
  }
  if (!AttachQuantFrame(data.substr(r.offset() + size), &loaded, error)) {
    return false;
  }
  *bundle = std::move(loaded);
  return true;
}

bool SaveBundleFile(const std::string& path, const TrainedBundle& bundle,
                    std::string* error) {
  std::string data = SerializeBundle(bundle);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open '" + path + "' for writing";
    return false;
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool ok = std::fclose(f) == 0 && written == data.size();
  if (!ok) {
    *error = "short write to '" + path + "'";
  }
  return ok;
}

bool LoadBundleFile(const std::string& path, TrainedBundle* bundle, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open '" + path + "' (train first with --model-dir?)";
    return false;
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  return DeserializeBundle(data, bundle, error);
}

}  // namespace serve
}  // namespace clara
