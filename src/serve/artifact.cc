#include "src/serve/artifact.h"

#include <cstdio>
#include <cstring>

#include "src/util/binio.h"

namespace clara {
namespace serve {

std::string BundlePath(const std::string& model_dir) {
  if (model_dir.empty() || model_dir.back() == '/') {
    return model_dir + "clara_bundle.bin";
  }
  return model_dir + "/clara_bundle.bin";
}

std::string SerializeBundle(const TrainedBundle& bundle) {
  BinWriter payload;
  bundle.SaveTo(payload);
  BinWriter frame;
  frame.Bytes(kArtifactMagic, sizeof(kArtifactMagic));
  frame.U16(kArtifactVersion);
  frame.U32(Crc32(payload.data()));
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.Bytes(payload.data().data(), payload.size());
  return frame.Take();
}

bool DeserializeBundle(std::string_view data, TrainedBundle* bundle, std::string* error) {
  BinReader r(data);
  char magic[4];
  if (!r.Raw(magic, sizeof(magic)) || std::memcmp(magic, kArtifactMagic, 4) != 0) {
    *error = "artifact: bad magic (not a Clara bundle)";
    return false;
  }
  uint16_t version = r.U16();
  if (r.ok() && version != kArtifactVersion) {
    *error = "artifact: format version " + std::to_string(version) +
             " unsupported (expected " + std::to_string(kArtifactVersion) + ")";
    return false;
  }
  uint32_t crc = r.U32();
  uint32_t size = r.U32();
  if (!r.ok() || size != r.remaining()) {
    *error = "artifact: truncated (payload size " + std::to_string(size) +
             ", remaining " + std::to_string(r.ok() ? r.remaining() : 0) + ")";
    return false;
  }
  std::string_view payload = data.substr(r.offset());
  uint32_t actual = Crc32(payload);
  if (actual != crc) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "artifact: CRC mismatch (stored %08x, computed %08x)",
                  crc, actual);
    *error = buf;
    return false;
  }
  BinReader body(payload);
  TrainedBundle loaded;
  if (!loaded.LoadFrom(body)) {
    *error = "artifact: " + body.error();
    return false;
  }
  *bundle = std::move(loaded);
  return true;
}

bool SaveBundleFile(const std::string& path, const TrainedBundle& bundle,
                    std::string* error) {
  std::string data = SerializeBundle(bundle);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    *error = "cannot open '" + path + "' for writing";
    return false;
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool ok = std::fclose(f) == 0 && written == data.size();
  if (!ok) {
    *error = "short write to '" + path + "'";
  }
  return ok;
}

bool LoadBundleFile(const std::string& path, TrainedBundle* bundle, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open '" + path + "' (train first with --model-dir?)";
    return false;
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  return DeserializeBundle(data, bundle, error);
}

}  // namespace serve
}  // namespace clara
