// Client-side retry schedule: exponential backoff with deterministic seeded
// jitter, honoring server retry_after_ms hints.
//
// The delay for attempt k (0-based) is
//
//   base * 2^k, capped at max_ms, then jittered to [delay/2, delay]
//
// ("equal jitter" — keeps a floor under the delay so a fleet of clients
// still spreads out without any of them hammering immediately). When the
// server supplied a retry_after_ms hint on the failed response, the hint is
// a *floor*: the computed delay is raised to at least the hint, never
// lowered — the server knows how long its brownout lasts better than the
// client's schedule does.
//
// Jitter comes from a splitmix64 stream seeded at construction, so tests
// can pin the whole schedule and assert exact bounds.
#ifndef SRC_SERVE_RETRY_H_
#define SRC_SERVE_RETRY_H_

#include <cstdint>

namespace clara {
namespace serve {

class RetryPolicy {
 public:
  struct Options {
    int max_attempts = 0;       // retries after the first try; 0 = no retries
    uint32_t base_ms = 25;      // first-retry delay before jitter
    uint32_t max_ms = 2000;     // cap on the un-jittered delay
    uint64_t jitter_seed = 1;   // deterministic jitter stream
  };

  RetryPolicy() : RetryPolicy(Options()) {}
  explicit RetryPolicy(Options opts) : opts_(opts), state_(opts.jitter_seed) {}

  // True when attempt `attempt` (0-based count of retries already made) is
  // still within budget.
  bool ShouldRetry(int attempt) const { return attempt < opts_.max_attempts; }

  // Delay before retry number `attempt` (0-based), honoring the server's
  // retry_after_ms hint from the failed response (0 = no hint). Advances the
  // jitter stream.
  uint32_t NextDelayMs(int attempt, uint32_t retry_after_ms);

  const Options& options() const { return opts_; }

 private:
  uint64_t NextRand();

  Options opts_;
  uint64_t state_;
};

}  // namespace serve
}  // namespace clara

#endif  // SRC_SERVE_RETRY_H_
