// Length-prefixed wire format for the Clara insight-serving daemon.
//
// Transport framing: each message is a u32 little-endian payload length
// followed by the payload, capped at kMaxFrameBytes. FrameReader consumes an
// arbitrary byte stream incrementally and yields whole payloads; an oversized
// length prefix poisons only that frame (the bytes are skipped and the
// overflow is reported) so one bad client message cannot wedge the stream.
//
// Payload encoding rides on src/util/binio.h: requests carry either a
// registry element name or inline mini-Click source plus a workload spec and
// optional deadline; responses carry a structured error or the offloading
// insights. Parsing is fully bounds-checked and never throws — malformed
// payloads come back as (false, error message).
//
// Telemetry extensions are backward compatible in both directions: requests
// may append an optional trace section (trace id for end-to-end request
// tracing) and responses an optional per-stage latency breakdown, each
// introduced by its own tag *after* all v1 fields. A v1 frame simply ends
// where the optional section would begin, and encoders omit the section when
// it carries nothing, so v1 bytes round-trip unchanged.
//
// Besides insight request/response, the protocol carries control-plane
// messages (MsgType::kControlRequest/kControlResponse): Stats, Health and
// Dump queries that a daemon answers immediately from its telemetry state
// without going through the request queue.
#ifndef SRC_SERVE_PROTO_H_
#define SRC_SERVE_PROTO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/analyzer.h"
#include "src/workload/workload.h"

namespace clara {
namespace serve {

inline constexpr size_t kMaxFrameBytes = 1 << 20;  // 1 MiB

// Leading u16 of every payload. The two insight values predate this enum and
// keep their original byte patterns ("QR"/"PR" on the wire).
enum class MsgType : uint16_t {
  kUnknown = 0,
  kInsightRequest = 0x5251,
  kInsightResponse = 0x5250,
  kControlRequest = 0x5143,
  kControlResponse = 0x5043,
};

// Classifies a payload by its tag without decoding it (kUnknown when the
// payload is too short or the tag is not one of ours).
MsgType PeekType(std::string_view payload);

enum class ErrorCode : uint8_t {
  kOk = 0,
  kBadRequest = 1,        // undecodable request payload
  kParseError = 2,        // inline source failed to parse
  kCheckFailed = 3,       // parsed program failed the type checker
  kUnknownElement = 4,    // element name not in the registry
  kQueueFull = 5,         // admission control rejected the request
  kDeadlineExceeded = 6,  // request expired before dispatch
  kOversized = 7,         // frame exceeded kMaxFrameBytes
  kShutdown = 8,          // engine stopped before the request ran
  kInternal = 9,
  kShedded = 10,          // brownout load-shedding dropped the request
};

// Highest ErrorCode value on the wire (parser bound).
inline constexpr uint8_t kMaxErrorCode = static_cast<uint8_t>(ErrorCode::kShedded);

// True for errors a client may retry with backoff: the condition is
// transient on the server side (overload, shedding, restart, injected
// transient fault), not a property of the request bytes.
bool IsRetryable(ErrorCode c);

const char* ErrorCodeName(ErrorCode c);

struct InsightRequest {
  uint64_t id = 0;
  // Exactly one of these: a registry element name, or inline mini-Click
  // source (takes precedence when non-empty).
  std::string element;
  std::string source;
  WorkloadSpec workload;
  uint32_t deadline_ms = 0;  // 0 = no deadline
  // End-to-end tracing: every span recorded while serving this request
  // carries this id, and the response echoes it in the latency breakdown.
  // 0 = untraced (the server assigns one when a trace sink is live). Encoded
  // as an optional trailing section, invisible to v1 decoders when 0.
  uint64_t trace_id = 0;
  // Load-shedding class: when the engine browns out it sheds the
  // lowest-priority queued requests first (higher value = more important).
  // Encoded as an optional trailing section, omitted when 0.
  uint8_t priority = 0;
};

// Per-stage latency breakdown attached to a response *outside* the cached
// body (stage timings differ per request even on byte-equal cache replays).
struct LatencyBreakdown {
  bool valid = false;  // present on the wire only when true
  uint64_t trace_id = 0;
  bool cache_hit = false;
  uint32_t queue_us = 0;    // submit -> batch drain
  uint32_t parse_us = 0;    // program resolution (parse/check or registry)
  uint32_t infer_us = 0;    // this request's share of batched LSTM inference
  uint32_t analyze_us = 0;  // full insight analysis
  uint32_t encode_us = 0;   // response-body encoding + cache store
  uint32_t total_us = 0;    // submit -> fulfill
};

// The response payload. `id` echoes the request. On error, `error` is set
// and the insight fields are defaults. The serve cache stores the encoded
// body *after* the id, so cached and uncached responses to an identical
// (program, workload) are byte-equal modulo the echoed id.
struct InsightResponse {
  uint64_t id = 0;
  ErrorCode error = ErrorCode::kOk;
  std::string error_message;

  std::string nf_name;
  std::string accelerator;
  int suggested_cores = 1;
  double total_compute = 0;
  uint32_t total_mem_state = 0;
  double naive_mpps = 0;
  double naive_us = 0;
  double tuned_mpps = 0;
  double tuned_us = 0;
  std::string rendered;  // human-readable insight text

  // Not part of the cached body: appended per response when valid.
  LatencyBreakdown breakdown;
  // Server hint on transient errors (kQueueFull/kShedded/kShutdown): wait at
  // least this long before retrying. Optional trailing section, omitted when
  // 0; never part of the cached body.
  uint32_t retry_after_ms = 0;
};

// ---- control plane ----
enum class ControlOp : uint8_t {
  kStats = 0,   // metrics registry snapshot as JSON
  kHealth = 1,  // queue depth, cache hit rate, artifact version, uptime, SLO
  kDump = 2,    // flight-recorder contents
  kReload = 3,  // hot-reload the artifact from the daemon's model dir
};

// Highest ControlOp value on the wire (parser bound).
inline constexpr uint8_t kMaxControlOp = static_cast<uint8_t>(ControlOp::kReload);

const char* ControlOpName(ControlOp op);

struct ControlRequest {
  ControlOp op = ControlOp::kStats;
};

struct ControlResponse {
  ControlOp op = ControlOp::kStats;
  bool ok = false;
  std::string error;  // set when !ok
  std::string json;   // the answer document (empty when !ok)
};

std::string EncodeControlRequest(const ControlRequest& req);
bool ParseControlRequest(std::string_view payload, ControlRequest* out, std::string* error);
std::string EncodeControlResponse(const ControlResponse& resp);
bool ParseControlResponse(std::string_view payload, ControlResponse* out,
                          std::string* error);

// ---- payload codecs ----
std::string EncodeRequest(const InsightRequest& req);
bool ParseRequest(std::string_view payload, InsightRequest* out, std::string* error);

std::string EncodeResponse(const InsightResponse& resp);
// The portion of the encoding after the id — the serve cache's unit. Never
// includes the latency breakdown (cached replays must stay byte-equal).
std::string EncodeResponseBody(const InsightResponse& resp);
std::string EncodeResponseWithBody(uint64_t id, std::string_view body,
                                   const LatencyBreakdown& breakdown = LatencyBreakdown{},
                                   uint32_t retry_after_ms = 0);
bool ParseResponse(std::string_view payload, InsightResponse* out, std::string* error);

// Content hashes for the serve cache key.
uint64_t HashWorkload(const WorkloadSpec& spec);

// ---- transport framing ----
void AppendFrame(std::string* out, std::string_view payload);

class FrameReader {
 public:
  // Appends raw bytes from the transport.
  void Feed(const void* data, size_t n);

  // Pops the next complete payload into *frame; false when no complete
  // frame is buffered. Oversized frames are consumed (skipped) and counted,
  // never returned.
  bool Next(std::string* frame);

  // Oversized frames consumed since the last call (resets the count).
  size_t TakeOversized();

 private:
  std::string buf_;
  size_t skip_ = 0;       // bytes of an oversized frame left to discard
  size_t oversized_ = 0;  // frames dropped
};

}  // namespace serve
}  // namespace clara

#endif  // SRC_SERVE_PROTO_H_
