// Hysteretic brownout policy: decides when the serving engine should enter
// and leave degraded ("brownout") operation based on the SLO tracker's
// rolling p99.
//
// Entering is edge-triggered on the degraded signal (p99 over threshold with
// a populated window). Leaving is deliberately sticky: the p99 must fall
// below exit_margin * threshold and *stay* there for exit_hold_us before the
// policy flips back — a single quiet slice right after shedding started must
// not bounce the engine straight back into overload (the classic brownout
// oscillation).
//
// All timestamps are caller-supplied microseconds on one monotonic timeline,
// matching obs::SloTracker, so the policy is deterministic under a fake
// clock. The class is not thread-safe by design: exactly one owner (the
// engine's dispatcher) calls Update(); everyone else reads the published
// `active` flag through the engine's atomic mirror.
#ifndef SRC_SERVE_BROWNOUT_H_
#define SRC_SERVE_BROWNOUT_H_

#include <cstdint>

namespace clara {
namespace serve {

class BrownoutPolicy {
 public:
  struct Options {
    // p99 threshold in microseconds above which the engine browns out.
    // 0 disables the policy entirely (Update never activates).
    double enter_threshold_us = 0;
    // Exit requires p99 < exit_margin * enter_threshold_us ...
    double exit_margin = 0.8;
    // ... sustained for this long.
    int64_t exit_hold_us = 2 * 1000 * 1000;  // 2 s
    // Backoff hint attached to shedded/rejected responses while active.
    uint32_t retry_after_ms = 50;
  };

  BrownoutPolicy() : BrownoutPolicy(Options()) {}
  explicit BrownoutPolicy(Options opts) : opts_(opts) {}

  // Feeds one SLO observation (window p99 + sample count) at `now_us`.
  // Returns the post-update active state. A window with zero samples never
  // changes state in either direction: no evidence, no transition.
  bool Update(int64_t now_us, double p99_us, uint64_t window_count);

  bool active() const { return active_; }
  // Lifetime transition counts (for serve.brownout.* metrics).
  uint64_t entered() const { return entered_; }
  uint64_t exited() const { return exited_; }
  const Options& options() const { return opts_; }

 private:
  Options opts_;
  bool active_ = false;
  // Start of the current below-exit-threshold streak; -1 = not in a streak.
  int64_t calm_since_us_ = -1;
  uint64_t entered_ = 0;
  uint64_t exited_ = 0;
};

}  // namespace serve
}  // namespace clara

#endif  // SRC_SERVE_BROWNOUT_H_
