#include "src/serve/proto.h"

#include <cstring>

#include "src/util/binio.h"

namespace clara {
namespace serve {
namespace {

constexpr uint16_t kRequestTag = 0x5251;   // "RQ"
constexpr uint16_t kResponseTag = 0x5250;  // "RP"
// Optional trailing sections (telemetry extensions, see proto.h).
constexpr uint16_t kTraceSectionTag = 0x4954;      // "TI" — request trace id
constexpr uint16_t kBreakdownSectionTag = 0x4244;  // "DB" — latency breakdown
constexpr uint16_t kPrioritySectionTag = 0x5051;   // "QP" — shed-class priority
constexpr uint16_t kRetrySectionTag = 0x4152;      // "RA" — retry-after hint

void EncodeWorkload(BinWriter& w, const WorkloadSpec& spec) {
  w.Str(spec.name);
  w.U32(spec.num_flows);
  w.F64(spec.zipf_s);
  w.U16(spec.pkt_size);
  w.F64(spec.syn_ratio);
  w.F64(spec.udp_fraction);
  w.U64(spec.seed);
}

bool DecodeWorkload(BinReader& r, WorkloadSpec* spec) {
  spec->name = r.Str();
  spec->num_flows = r.U32();
  spec->zipf_s = r.F64();
  spec->pkt_size = r.U16();
  spec->syn_ratio = r.F64();
  spec->udp_fraction = r.F64();
  spec->seed = r.U64();
  return r.ok();
}

}  // namespace

MsgType PeekType(std::string_view payload) {
  if (payload.size() < 2) {
    return MsgType::kUnknown;
  }
  uint16_t tag = static_cast<uint16_t>(static_cast<uint8_t>(payload[0])) |
                 static_cast<uint16_t>(static_cast<uint8_t>(payload[1])) << 8;
  switch (static_cast<MsgType>(tag)) {
    case MsgType::kInsightRequest:
    case MsgType::kInsightResponse:
    case MsgType::kControlRequest:
    case MsgType::kControlResponse:
      return static_cast<MsgType>(tag);
    default:
      return MsgType::kUnknown;
  }
}

const char* ControlOpName(ControlOp op) {
  switch (op) {
    case ControlOp::kStats: return "stats";
    case ControlOp::kHealth: return "health";
    case ControlOp::kDump: return "dump";
    case ControlOp::kReload: return "reload";
  }
  return "?";
}

const char* ErrorCodeName(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kParseError: return "parse-error";
    case ErrorCode::kCheckFailed: return "check-failed";
    case ErrorCode::kUnknownElement: return "unknown-element";
    case ErrorCode::kQueueFull: return "queue-full";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kOversized: return "oversized-frame";
    case ErrorCode::kShutdown: return "shutdown";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kShedded: return "shedded";
  }
  return "?";
}

bool IsRetryable(ErrorCode c) {
  switch (c) {
    case ErrorCode::kQueueFull:
    case ErrorCode::kShedded:
    case ErrorCode::kShutdown:
    case ErrorCode::kInternal:
      return true;
    default:
      return false;
  }
}

std::string EncodeRequest(const InsightRequest& req) {
  BinWriter w;
  w.U16(kRequestTag);
  w.U64(req.id);
  w.Str(req.element);
  w.Str(req.source);
  EncodeWorkload(w, req.workload);
  w.U32(req.deadline_ms);
  // Optional trailing sections in canonical order: v1 decoders never see
  // them because v1 encoders never write them, and the parser below treats
  // absence as the zero value.
  if (req.trace_id != 0) {
    w.U16(kTraceSectionTag);
    w.U64(req.trace_id);
  }
  if (req.priority != 0) {
    w.U16(kPrioritySectionTag);
    w.U8(req.priority);
  }
  return w.Take();
}

bool ParseRequest(std::string_view payload, InsightRequest* out, std::string* error) {
  BinReader r(payload);
  if (r.U16() != kRequestTag) {
    *error = "request: bad message tag";
    return false;
  }
  InsightRequest req;
  req.id = r.U64();
  req.element = r.Str();
  req.source = r.Str();
  if (!DecodeWorkload(r, &req.workload)) {
    *error = "request: " + r.error();
    return false;
  }
  req.deadline_ms = r.U32();
  if (!r.ok()) {
    *error = "request: " + r.error();
    return false;
  }
  // Optional trailing sections (absent in v1 frames), each at most once.
  bool saw_trace = false, saw_priority = false;
  while (r.remaining() != 0) {
    uint16_t tag = r.U16();
    if (tag == kTraceSectionTag && !saw_trace) {
      saw_trace = true;
      req.trace_id = r.U64();
    } else if (tag == kPrioritySectionTag && !saw_priority) {
      saw_priority = true;
      req.priority = r.U8();
    } else {
      *error = "request: bad trailing section tag";
      return false;
    }
    if (!r.ok()) {
      *error = "request: " + r.error();
      return false;
    }
  }
  if (req.element.empty() && req.source.empty()) {
    *error = "request: neither element name nor inline source given";
    return false;
  }
  *out = std::move(req);
  return true;
}

std::string EncodeResponseBody(const InsightResponse& resp) {
  BinWriter w;
  w.U8(static_cast<uint8_t>(resp.error));
  w.Str(resp.error_message);
  w.Str(resp.nf_name);
  w.Str(resp.accelerator);
  w.I32(resp.suggested_cores);
  w.F64(resp.total_compute);
  w.U32(resp.total_mem_state);
  w.F64(resp.naive_mpps);
  w.F64(resp.naive_us);
  w.F64(resp.tuned_mpps);
  w.F64(resp.tuned_us);
  w.Str(resp.rendered);
  return w.Take();
}

std::string EncodeResponseWithBody(uint64_t id, std::string_view body,
                                   const LatencyBreakdown& breakdown,
                                   uint32_t retry_after_ms) {
  BinWriter w;
  w.U16(kResponseTag);
  w.U64(id);
  w.Bytes(body.data(), body.size());
  if (breakdown.valid) {
    // Appended after the cached body so byte-equal cache replays stay
    // byte-equal while each response still carries its own stage timings.
    w.U16(kBreakdownSectionTag);
    w.U64(breakdown.trace_id);
    w.Bool(breakdown.cache_hit);
    w.U32(breakdown.queue_us);
    w.U32(breakdown.parse_us);
    w.U32(breakdown.infer_us);
    w.U32(breakdown.analyze_us);
    w.U32(breakdown.encode_us);
    w.U32(breakdown.total_us);
  }
  if (retry_after_ms != 0) {
    // Transient-error backoff hint; like the breakdown it stays outside the
    // cached body (it is per-delivery, not per-answer).
    w.U16(kRetrySectionTag);
    w.U32(retry_after_ms);
  }
  return w.Take();
}

std::string EncodeResponse(const InsightResponse& resp) {
  return EncodeResponseWithBody(resp.id, EncodeResponseBody(resp), resp.breakdown,
                                resp.retry_after_ms);
}

bool ParseResponse(std::string_view payload, InsightResponse* out, std::string* error) {
  BinReader r(payload);
  if (r.U16() != kResponseTag) {
    *error = "response: bad message tag";
    return false;
  }
  InsightResponse resp;
  resp.id = r.U64();
  uint8_t code = r.U8();
  if (r.ok() && code > kMaxErrorCode) {
    *error = "response: unknown error code " + std::to_string(code);
    return false;
  }
  resp.error = static_cast<ErrorCode>(code);
  resp.error_message = r.Str();
  resp.nf_name = r.Str();
  resp.accelerator = r.Str();
  resp.suggested_cores = r.I32();
  resp.total_compute = r.F64();
  resp.total_mem_state = r.U32();
  resp.naive_mpps = r.F64();
  resp.naive_us = r.F64();
  resp.tuned_mpps = r.F64();
  resp.tuned_us = r.F64();
  resp.rendered = r.Str();
  if (!r.ok()) {
    *error = "response: " + r.error();
    return false;
  }
  // Optional trailing sections (absent in v1 frames), each at most once.
  bool saw_breakdown = false, saw_retry = false;
  while (r.remaining() != 0) {
    uint16_t tag = r.U16();
    if (tag == kBreakdownSectionTag && !saw_breakdown) {
      saw_breakdown = true;
      resp.breakdown.valid = true;
      resp.breakdown.trace_id = r.U64();
      resp.breakdown.cache_hit = r.Bool();
      resp.breakdown.queue_us = r.U32();
      resp.breakdown.parse_us = r.U32();
      resp.breakdown.infer_us = r.U32();
      resp.breakdown.analyze_us = r.U32();
      resp.breakdown.encode_us = r.U32();
      resp.breakdown.total_us = r.U32();
    } else if (tag == kRetrySectionTag && !saw_retry) {
      saw_retry = true;
      resp.retry_after_ms = r.U32();
    } else {
      *error = "response: bad trailing section tag";
      return false;
    }
    if (!r.ok()) {
      *error = "response: " + r.error();
      return false;
    }
  }
  *out = std::move(resp);
  return true;
}

std::string EncodeControlRequest(const ControlRequest& req) {
  BinWriter w;
  w.U16(static_cast<uint16_t>(MsgType::kControlRequest));
  w.U8(static_cast<uint8_t>(req.op));
  return w.Take();
}

bool ParseControlRequest(std::string_view payload, ControlRequest* out,
                         std::string* error) {
  BinReader r(payload);
  if (r.U16() != static_cast<uint16_t>(MsgType::kControlRequest)) {
    *error = "control request: bad message tag";
    return false;
  }
  uint8_t op = r.U8();
  if (r.ok() && op > kMaxControlOp) {
    *error = "control request: unknown op " + std::to_string(op);
    return false;
  }
  if (!r.ok()) {
    *error = "control request: " + r.error();
    return false;
  }
  if (r.remaining() != 0) {
    *error = "control request: " + std::to_string(r.remaining()) + " trailing bytes";
    return false;
  }
  out->op = static_cast<ControlOp>(op);
  return true;
}

std::string EncodeControlResponse(const ControlResponse& resp) {
  BinWriter w;
  w.U16(static_cast<uint16_t>(MsgType::kControlResponse));
  w.U8(static_cast<uint8_t>(resp.op));
  w.Bool(resp.ok);
  w.Str(resp.error);
  w.Str(resp.json);
  return w.Take();
}

bool ParseControlResponse(std::string_view payload, ControlResponse* out,
                          std::string* error) {
  BinReader r(payload);
  if (r.U16() != static_cast<uint16_t>(MsgType::kControlResponse)) {
    *error = "control response: bad message tag";
    return false;
  }
  ControlResponse resp;
  uint8_t op = r.U8();
  if (r.ok() && op > kMaxControlOp) {
    *error = "control response: unknown op " + std::to_string(op);
    return false;
  }
  resp.op = static_cast<ControlOp>(op);
  resp.ok = r.Bool();
  resp.error = r.Str();
  resp.json = r.Str();
  if (!r.ok()) {
    *error = "control response: " + r.error();
    return false;
  }
  if (r.remaining() != 0) {
    *error = "control response: " + std::to_string(r.remaining()) + " trailing bytes";
    return false;
  }
  *out = std::move(resp);
  return true;
}

uint64_t HashWorkload(const WorkloadSpec& spec) {
  BinWriter w;
  EncodeWorkload(w, spec);
  return Fnv1a64(w.data());
}

void AppendFrame(std::string* out, std::string_view payload) {
  char len[4];
  uint32_t n = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    len[i] = static_cast<char>((n >> (8 * i)) & 0xff);
  }
  out->append(len, 4);
  out->append(payload.data(), payload.size());
}

void FrameReader::Feed(const void* data, size_t n) {
  buf_.append(static_cast<const char*>(data), n);
}

bool FrameReader::Next(std::string* frame) {
  for (;;) {
    if (skip_ > 0) {
      size_t take = std::min(skip_, buf_.size());
      buf_.erase(0, take);
      skip_ -= take;
      if (skip_ > 0) {
        return false;  // still discarding the oversized frame
      }
    }
    if (buf_.size() < 4) {
      return false;
    }
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(static_cast<uint8_t>(buf_[i])) << (8 * i);
    }
    if (len > kMaxFrameBytes) {
      ++oversized_;
      buf_.erase(0, 4);
      skip_ = len;
      continue;  // discard and look for the next frame
    }
    if (buf_.size() < 4 + static_cast<size_t>(len)) {
      return false;
    }
    frame->assign(buf_, 4, len);
    buf_.erase(0, 4 + static_cast<size_t>(len));
    return true;
  }
}

size_t FrameReader::TakeOversized() {
  size_t n = oversized_;
  oversized_ = 0;
  return n;
}

}  // namespace serve
}  // namespace clara
