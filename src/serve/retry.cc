#include "src/serve/retry.h"

namespace clara {
namespace serve {

uint64_t RetryPolicy::NextRand() {
  // splitmix64 — same generator the fault injector uses; tiny and seedable.
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint32_t RetryPolicy::NextDelayMs(int attempt, uint32_t retry_after_ms) {
  uint64_t delay = opts_.base_ms;
  for (int i = 0; i < attempt && delay < opts_.max_ms; ++i) {
    delay *= 2;
  }
  if (delay > opts_.max_ms) {
    delay = opts_.max_ms;
  }
  // Equal jitter: uniform in [delay/2, delay].
  uint64_t half = delay / 2;
  uint64_t span = delay - half + 1;
  delay = half + (span != 0 ? NextRand() % span : 0);
  if (delay < retry_after_ms) {
    delay = retry_after_ms;
  }
  return static_cast<uint32_t>(delay);
}

}  // namespace serve
}  // namespace clara
