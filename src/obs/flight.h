// Flight recorder: a fixed-size ring buffer of recent per-request records
// (ids, sizes, stage timings, outcome) that costs a mutexed struct copy per
// request and is dumped only on demand — the `Dump` control frame, SIGUSR1,
// or automatically on the first internal serving error. The last N requests
// are exactly what a post-mortem needs when a daemon misbehaves and the
// aggregate metrics have already averaged the incident away.
#ifndef SRC_OBS_FLIGHT_H_
#define SRC_OBS_FLIGHT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace clara {
namespace obs {

struct FlightRecord {
  uint64_t id = 0;        // request id (echoed from the client)
  uint64_t trace_id = 0;  // 0 = request carried no trace id
  std::string label;      // element name, "<inline>", or error site
  uint8_t outcome = 0;    // serve::ErrorCode numeric value
  bool cache_hit = false;
  int64_t done_us = 0;  // completion time, recorder-owner timeline
  uint32_t request_bytes = 0;
  // Per-stage latencies (microseconds). Stages that did not run stay 0.
  uint32_t queue_us = 0;
  uint32_t parse_us = 0;
  uint32_t infer_us = 0;
  uint32_t analyze_us = 0;
  uint32_t encode_us = 0;
  uint32_t total_us = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 128);

  void Record(FlightRecord rec);

  // Records oldest-first; at most `capacity` of them.
  std::vector<FlightRecord> Snapshot() const;

  // {"capacity":N,"recorded":M,"records":[{...},...]} — records oldest-first.
  std::string ToJson() const;

  void Clear();
  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Total records ever written (size() saturates at capacity, this does not).
  uint64_t recorded() const;

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<FlightRecord> ring_;
  size_t next_ = 0;  // ring slot for the next record
  uint64_t recorded_ = 0;
};

}  // namespace obs
}  // namespace clara

#endif  // SRC_OBS_FLIGHT_H_
