#include "src/obs/export.h"

#include "src/obs/metrics.h"

namespace clara {
namespace obs {

PeriodicJsonlExporter::PeriodicJsonlExporter(std::string path,
                                             std::chrono::milliseconds interval)
    : path_(std::move(path)),
      interval_(std::max(interval, std::chrono::milliseconds(1))) {}

PeriodicJsonlExporter::~PeriodicJsonlExporter() { Stop(); }

bool PeriodicJsonlExporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return true;
  }
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    return false;
  }
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void PeriodicJsonlExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  WriteSample();  // final snapshot, so short runs export at least one line
  std::fclose(file_);
  file_ = nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void PeriodicJsonlExporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) {
      return;
    }
    lock.unlock();
    WriteSample();
    lock.lock();
  }
}

void PeriodicJsonlExporter::WriteSample() {
  int64_t ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  std::string line = "{\"ts_ms\":" + std::to_string(ts_ms) +
                     ",\"seq\":" + std::to_string(seq_++) +
                     ",\"metrics\":" + MetricsRegistry::Global().ToJson() + "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

}  // namespace obs
}  // namespace clara
