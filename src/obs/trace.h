// Structured trace sink: scoped spans collected into Chrome-trace-format
// JSON (loadable in chrome://tracing / Perfetto) and JSONL.
//
// A global sink pointer gates everything: with no sink registered, starting
// a span is a single pointer load — no clock read, no allocation. Front ends
// own the sink; library code only ever emits through the global.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace clara {
namespace obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';       // 'X' complete span, 'C' counter, 'i' instant
  int64_t ts_us = 0;   // microseconds since sink epoch
  int64_t dur_us = 0;  // span duration ('X' only)
  uint32_t tid = 0;
  double value = 0;    // counter value ('C' only)
  // Request correlation: spans belonging to one traced request share a
  // nonzero trace_id, emitted as args.trace_id in the Chrome JSON so
  // chrome://tracing / check_trace.py can group nested per-stage spans.
  uint64_t trace_id = 0;
};

class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  // Microseconds since this sink was created (monotonic).
  int64_t NowUs() const;

  void AddComplete(const std::string& name, const std::string& cat, int64_t ts_us,
                   int64_t dur_us);
  // Complete span correlated to a request: trace_id lands in args.trace_id.
  // `tid` overrides the calling thread's id so every span of one request
  // renders on the same track regardless of which thread recorded it.
  void AddCompleteForTrace(const std::string& name, const std::string& cat,
                           int64_t ts_us, int64_t dur_us, uint64_t trace_id);
  // Append a pre-built batch under one lock. The serving hot path emits a
  // whole request span tree at once; per-event locking there is measurable.
  void AddEvents(std::vector<TraceEvent>&& events);
  void AddCounter(const std::string& name, double value);
  void AddInstant(const std::string& name, const std::string& cat);

  size_t size() const;
  std::vector<TraceEvent> Events() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — chrome://tracing format.
  std::string ToChromeJson() const;
  // One JSON object per line.
  std::string ToJsonl() const;
  bool WriteChromeJson(const std::string& path) const;
  bool WriteJsonl(const std::string& path) const;

 private:
  static uint32_t CurrentTid();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// Global sink registration. Not owned; caller keeps the sink alive for the
// duration. nullptr (the default) disables span collection entirely.
TraceSink* GlobalTrace();
void SetGlobalTrace(TraceSink* sink);

// RAII span against the global sink. `name` and `cat` must outlive the span
// only until the destructor runs (string literals in practice).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "clara")
      : sink_(GlobalTrace()), name_(name), cat_(cat),
        start_us_(sink_ != nullptr ? sink_->NowUs() : 0) {}

  ~ScopedSpan() {
    if (sink_ != nullptr) {
      sink_->AddComplete(name_, cat_, start_us_, sink_->NowUs() - start_us_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceSink* sink_;
  const char* name_;
  const char* cat_;
  int64_t start_us_;
};

// Emit a counter sample to the global sink, if any.
void TraceCounter(const char* name, double value);

// Pipeline-stage instrumentation in one RAII: a span against the global
// trace sink plus a wall-time histogram sample (milliseconds) under
// `metric_name` in the global registry. Costs one Enabled() check when
// telemetry is off.
class StageTimer {
 public:
  StageTimer(const char* span_name, const char* metric_name, const char* cat = "pipeline");
  ~StageTimer();
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  ScopedSpan span_;
  const char* metric_;
  bool timing_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace clara

// Span macro: compiles away entirely under CLARA_OBS_DISABLE; otherwise a
// no-op pointer check when no sink is registered.
#define CLARA_OBS_CONCAT_INNER_(a, b) a##b
#define CLARA_OBS_CONCAT_(a, b) CLARA_OBS_CONCAT_INNER_(a, b)
#ifdef CLARA_OBS_DISABLE
#define CLARA_TRACE_SPAN(name, cat) \
  do {                              \
  } while (0)
#else
#define CLARA_TRACE_SPAN(name, cat) \
  ::clara::obs::ScopedSpan CLARA_OBS_CONCAT_(clara_obs_span_, __LINE__)(name, cat)
#endif

#endif  // SRC_OBS_TRACE_H_
