#include "src/obs/trace.h"

#include <atomic>
#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>

#include "src/obs/json_util.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace clara {
namespace obs {

namespace {

std::atomic<TraceSink*> g_sink{nullptr};

void AppendEventJson(std::ostringstream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.cat)
     << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us << ",\"pid\":1,\"tid\":" << e.tid;
  if (e.ph == 'X') {
    os << ",\"dur\":" << e.dur_us;
    if (e.trace_id != 0) {
      os << ",\"args\":{\"trace_id\":" << e.trace_id << "}";
    }
  }
  if (e.ph == 'C') {
    os << ",\"args\":{\"value\":" << JsonNumber(e.value) << "}";
  }
  if (e.ph == 'i') {
    os << ",\"s\":\"g\"";
  }
  os << "}";
}

}  // namespace

TraceSink::TraceSink() : epoch_(std::chrono::steady_clock::now()) {}

int64_t TraceSink::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

uint32_t TraceSink::CurrentTid() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000);
}

void TraceSink::AddComplete(const std::string& name, const std::string& cat, int64_t ts_us,
                            int64_t dur_us) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::AddCompleteForTrace(const std::string& name, const std::string& cat,
                                    int64_t ts_us, int64_t dur_us, uint64_t trace_id) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  // One track per traced request: nesting stays visually intact even though
  // queue wait and dispatch run on different threads.
  e.tid = static_cast<uint32_t>(trace_id % 100000);
  e.trace_id = trace_id;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::AddEvents(std::vector<TraceEvent>&& events) {
  if (events.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.empty()) {
    events_ = std::move(events);
    return;
  }
  // No reserve(): exact-fit reallocation on every batch would make repeated
  // appends quadratic; insert keeps the usual geometric growth.
  events_.insert(events_.end(), std::make_move_iterator(events.begin()),
                 std::make_move_iterator(events.end()));
}

void TraceSink::AddCounter(const std::string& name, double value) {
  TraceEvent e;
  e.name = name;
  e.cat = "counter";
  e.ph = 'C';
  e.ts_us = NowUs();
  e.tid = CurrentTid();
  e.value = value;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void TraceSink::AddInstant(const std::string& name, const std::string& cat) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = NowUs();
  e.tid = CurrentTid();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceSink::ToChromeJson() const {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : Events()) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    AppendEventJson(os, e);
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

std::string TraceSink::ToJsonl() const {
  std::ostringstream os;
  for (const TraceEvent& e : Events()) {
    std::ostringstream line;
    AppendEventJson(line, e);
    os << line.str() << "\n";
  }
  return os.str();
}

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t n = std::fwrite(content.data(), 1, content.size(), f);
  bool ok = n == content.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace

bool TraceSink::WriteChromeJson(const std::string& path) const {
  return WriteFile(path, ToChromeJson());
}

bool TraceSink::WriteJsonl(const std::string& path) const {
  return WriteFile(path, ToJsonl());
}

StageTimer::StageTimer(const char* span_name, const char* metric_name, const char* cat)
    : span_(span_name, cat), metric_(metric_name), timing_(Enabled()) {
  if (timing_) {
    start_ = std::chrono::steady_clock::now();
  }
}

StageTimer::~StageTimer() {
  if (timing_) {
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
    MetricsRegistry::Global()
        .GetHistogram(metric_, Histogram::ExponentialBuckets(0.001, 2, 40))
        .Observe(ms);
  }
}

TraceSink* GlobalTrace() { return g_sink.load(std::memory_order_acquire); }

void SetGlobalTrace(TraceSink* sink) { g_sink.store(sink, std::memory_order_release); }

void TraceCounter(const char* name, double value) {
  TraceSink* sink = GlobalTrace();
  if (sink != nullptr) {
    sink->AddCounter(name, value);
  }
}

}  // namespace obs
}  // namespace clara
