#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/obs/json_util.h"

namespace clara {
namespace obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = DefaultBuckets();
  }
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void Histogram::Observe(double v) {
  size_t idx = std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  // std::upper_bound yields the first bound strictly greater; bucket i is
  // v <= bounds[i], so step back onto an exactly-equal bound.
  if (idx > 0 && v == bounds_[idx - 1]) {
    idx -= 1;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old_sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old_sum, old_sum + v, std::memory_order_relaxed)) {
  }
  std::lock_guard<std::mutex> lock(minmax_mu_);
  if (!has_obs_.load(std::memory_order_relaxed)) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    has_obs_.store(true, std::memory_order_relaxed);
  } else {
    if (v < min_.load(std::memory_order_relaxed)) {
      min_.store(v, std::memory_order_relaxed);
    }
    if (v > max_.load(std::memory_order_relaxed)) {
      max_.store(v, std::memory_order_relaxed);
    }
  }
}

double Histogram::min() const { return min_.load(std::memory_order_relaxed); }
double Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(n);
  std::vector<uint64_t> counts = BucketCounts();
  double cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double next = cum + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      // Interpolate within bucket [lo, hi].
      double lo = i == 0 ? min() : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max();
      lo = std::min(lo, hi);
      double frac = counts[i] > 0 ? (target - cum) / static_cast<double>(counts[i]) : 0;
      // The bucket upper bound can overshoot the largest observed value;
      // clamp so quantiles never exceed max (or undershoot min).
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min(), max());
    }
    cum = next;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(minmax_mu_);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  has_obs_.store(false, std::memory_order_relaxed);
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor, int n) {
  std::vector<double> out;
  double v = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> Histogram::LinearBuckets(double start, double step, int n) {
  std::vector<double> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(start + step * i);
  }
  return out;
}

std::vector<double> Histogram::DefaultBuckets() {
  return ExponentialBuckets(1, 2, 30);
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.min = h->min();
    s.max = h->max();
    s.p50 = h->Quantile(0.50);
    s.p95 = h->Quantile(0.95);
    s.p99 = h->Quantile(0.99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::Render() const {
  std::ostringstream os;
  for (const MetricSnapshot& s : Snapshot()) {
    switch (s.kind) {
      case MetricKind::kCounter: {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%-48s %14llu\n", s.name.c_str(),
                      static_cast<unsigned long long>(s.value));
        os << buf;
        break;
      }
      case MetricKind::kGauge: {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%-48s %14.4f\n", s.name.c_str(), s.value);
        os << buf;
        break;
      }
      case MetricKind::kHistogram: {
        char buf[240];
        std::snprintf(buf, sizeof(buf),
                      "%-48s n=%llu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
                      s.name.c_str(), static_cast<unsigned long long>(s.count),
                      s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0, s.p50,
                      s.p95, s.p99, s.max);
        os << buf;
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream counters;
  std::ostringstream gauges;
  std::ostringstream hists;
  bool fc = true;
  bool fg = true;
  bool fh = true;
  for (const MetricSnapshot& s : Snapshot()) {
    switch (s.kind) {
      case MetricKind::kCounter:
        counters << (fc ? "" : ",") << "\"" << JsonEscape(s.name)
                 << "\":" << static_cast<uint64_t>(s.value);
        fc = false;
        break;
      case MetricKind::kGauge:
        gauges << (fg ? "" : ",") << "\"" << JsonEscape(s.name) << "\":" << JsonNumber(s.value);
        fg = false;
        break;
      case MetricKind::kHistogram:
        hists << (fh ? "" : ",") << "\"" << JsonEscape(s.name) << "\":{\"count\":" << s.count
              << ",\"sum\":" << JsonNumber(s.sum) << ",\"min\":" << JsonNumber(s.min)
              << ",\"max\":" << JsonNumber(s.max) << ",\"p50\":" << JsonNumber(s.p50)
              << ",\"p95\":" << JsonNumber(s.p95) << ",\"p99\":" << JsonNumber(s.p99) << "}";
        fh = false;
        break;
    }
  }
  return "{\"counters\":{" + counters.str() + "},\"gauges\":{" + gauges.str() +
         "},\"histograms\":{" + hists.str() + "}}";
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace clara
