// Periodic JSONL metrics export: a background thread that appends one
// timestamped metrics-registry snapshot per interval to a file, so a
// long-running daemon produces a time series instead of a single snapshot at
// shutdown. Each line is a self-contained JSON object:
//
//   {"ts_ms":<unix epoch ms>,"seq":<line number>,"metrics":{...}}
//
// Stop() (and the destructor) writes one final line so short runs still
// export at least one sample.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

namespace clara {
namespace obs {

class PeriodicJsonlExporter {
 public:
  PeriodicJsonlExporter(std::string path, std::chrono::milliseconds interval);
  ~PeriodicJsonlExporter();

  PeriodicJsonlExporter(const PeriodicJsonlExporter&) = delete;
  PeriodicJsonlExporter& operator=(const PeriodicJsonlExporter&) = delete;

  // Opens the file (append) and starts the export thread. Returns false when
  // the file cannot be opened. Idempotent.
  bool Start();
  // Writes a final sample and joins the thread. Idempotent.
  void Stop();

  uint64_t samples_written() const { return seq_; }

 private:
  void Loop();
  void WriteSample();

  std::string path_;
  std::chrono::milliseconds interval_;
  std::FILE* file_ = nullptr;
  uint64_t seq_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace clara

#endif  // SRC_OBS_EXPORT_H_
