#include "src/obs/bottleneck.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/obs/json_util.h"

namespace clara {
namespace obs {

std::string BottleneckRecord::ToString() const {
  std::ostringstream os;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s @ %d cores: %.2f Mpps / %.2f us — bound by %s (rho=%.2f)\n",
                nf.c_str(), cores, throughput_mpps, latency_us, bound_resource.c_str(),
                bound_rho);
  os << buf;
  for (const ResourceSample& u : utils) {
    std::snprintf(buf, sizeof(buf), "    %-6s rho=%5.2f  eff-latency=%8.1f cyc%s\n",
                  u.resource.c_str(), u.rho, u.latency_cycles,
                  u.resource == bound_resource ? "   <-- binds" : "");
    os << buf;
  }
  return os.str();
}

std::string BottleneckRecord::ToJson() const {
  std::ostringstream os;
  os << "{\"nf\":\"" << JsonEscape(nf) << "\",\"cores\":" << cores
     << ",\"throughput_mpps\":" << JsonNumber(throughput_mpps)
     << ",\"latency_us\":" << JsonNumber(latency_us) << ",\"bound_resource\":\""
     << JsonEscape(bound_resource) << "\",\"bound_rho\":" << JsonNumber(bound_rho)
     << ",\"utils\":[";
  for (size_t i = 0; i < utils.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "{\"resource\":\"" << JsonEscape(utils[i].resource)
       << "\",\"rho\":" << JsonNumber(utils[i].rho)
       << ",\"latency_cycles\":" << JsonNumber(utils[i].latency_cycles) << "}";
  }
  os << "]}";
  return os.str();
}

void BottleneckLedger::Record(BottleneckRecord r) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  auto it = latest_.find(r.nf);
  if (it != latest_.end()) {
    it->second = std::move(r);
    return;
  }
  while (latest_.size() >= max_nfs_ && !insertion_order_.empty()) {
    latest_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
  insertion_order_.push_back(r.nf);
  latest_.emplace(r.nf, std::move(r));
}

std::vector<BottleneckRecord> BottleneckLedger::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BottleneckRecord> out;
  out.reserve(latest_.size());
  for (const auto& [name, rec] : latest_) {
    out.push_back(rec);
  }
  return out;  // std::map iteration is already name-sorted
}

bool BottleneckLedger::LatestFor(const std::string& nf, BottleneckRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latest_.find(nf);
  if (it == latest_.end()) {
    return false;
  }
  if (out != nullptr) {
    *out = it->second;
  }
  return true;
}

uint64_t BottleneckLedger::total_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string BottleneckLedger::Render() const {
  std::ostringstream os;
  for (const BottleneckRecord& r : Latest()) {
    os << r.ToString();
  }
  return os.str();
}

void BottleneckLedger::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  latest_.clear();
  insertion_order_.clear();
  total_ = 0;
}

BottleneckLedger& BottleneckLedger::Global() {
  static BottleneckLedger* ledger = new BottleneckLedger();
  return *ledger;
}

}  // namespace obs
}  // namespace clara
