#include "src/obs/slo.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"

namespace clara {
namespace obs {
namespace {

// Exponential latency buckets: bucket i covers (2^(i-1), 2^i] microseconds,
// bucket 0 covers (0, 1]. 40 buckets reach ~9 minutes, far past any serve
// deadline.
constexpr int kBuckets = 40;

int BucketFor(double latency_us) {
  if (latency_us <= 1.0) {
    return 0;
  }
  int idx = static_cast<int>(std::ceil(std::log2(latency_us)));
  return std::min(idx, kBuckets - 1);
}

double BucketUpper(int idx) { return std::ldexp(1.0, idx); }  // 2^idx

}  // namespace

SloTracker::SloTracker(Options opts) : opts_(opts) {
  opts_.slices = std::max(opts_.slices, 1);
  opts_.window_us = std::max<int64_t>(opts_.window_us, opts_.slices);
  slice_us_ = opts_.window_us / opts_.slices;
  slices_.resize(static_cast<size_t>(opts_.slices));
  for (auto& s : slices_) {
    s.buckets.assign(kBuckets, 0);
  }
}

void SloTracker::Advance(int64_t now_us) {
  Slice& cur = slices_[cur_];
  if (cur.start_us < 0) {
    cur.start_us = now_us - now_us % slice_us_;
    return;
  }
  // Step forward one slice at a time, clearing each ring slot as it is
  // reused. A long idle gap rotates through the whole ring at most once.
  int64_t steps = (now_us - cur.start_us) / slice_us_;
  if (steps <= 0) {
    return;
  }
  steps = std::min<int64_t>(steps, opts_.slices);
  int64_t base = now_us - now_us % slice_us_;
  for (int64_t i = 0; i < steps; ++i) {
    cur_ = (cur_ + 1) % slices_.size();
    Slice& s = slices_[cur_];
    std::fill(s.buckets.begin(), s.buckets.end(), 0);
    s.count = s.errors = s.overruns = 0;
    s.max_us = 0;
    s.start_us = base - (steps - 1 - i) * slice_us_;
  }
}

void SloTracker::Record(int64_t now_us, double latency_us, bool error, bool overrun) {
  std::lock_guard<std::mutex> lock(mu_);
  Advance(now_us);
  Slice& s = slices_[cur_];
  s.buckets[static_cast<size_t>(BucketFor(latency_us))] += 1;
  s.count += 1;
  s.errors += error ? 1 : 0;
  s.overruns += overrun ? 1 : 0;
  s.max_us = std::max(s.max_us, latency_us);
}

double SloTracker::MergedQuantile(const std::vector<uint64_t>& counts, uint64_t total,
                                  double q, double max_us) {
  if (total == 0) {
    return 0;
  }
  double target = std::clamp(q, 0.0, 1.0) * static_cast<double>(total);
  double cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    double next = cum + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      double lo = i == 0 ? 0.0 : BucketUpper(static_cast<int>(i) - 1);
      double hi = BucketUpper(static_cast<int>(i));
      double frac = (target - cum) / static_cast<double>(counts[i]);
      return std::min(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), max_us);
    }
    cum = next;
  }
  return max_us;
}

SloTracker::Window SloTracker::Snapshot(int64_t now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> merged(kBuckets, 0);
  Window w;
  int64_t oldest = now_us - opts_.window_us;
  for (const Slice& s : slices_) {
    if (s.start_us < 0 || s.start_us + slice_us_ <= oldest || s.start_us > now_us) {
      continue;
    }
    for (int i = 0; i < kBuckets; ++i) {
      merged[static_cast<size_t>(i)] += s.buckets[static_cast<size_t>(i)];
    }
    w.count += s.count;
    w.errors += s.errors;
    w.overruns += s.overruns;
    w.max_us = std::max(w.max_us, s.max_us);
  }
  w.p50_us = MergedQuantile(merged, w.count, 0.50, w.max_us);
  w.p90_us = MergedQuantile(merged, w.count, 0.90, w.max_us);
  w.p99_us = MergedQuantile(merged, w.count, 0.99, w.max_us);
  if (w.count > 0) {
    w.error_rate = static_cast<double>(w.errors) / static_cast<double>(w.count);
    w.overrun_rate = static_cast<double>(w.overruns) / static_cast<double>(w.count);
  }
  w.degraded = opts_.p99_threshold_us > 0 && w.count > 0 && w.p99_us > opts_.p99_threshold_us;
  return w;
}

void SloTracker::ExportGauges(int64_t now_us) const {
  Window w = Snapshot(now_us);
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetGauge("serve.slo.p50_us").Set(w.p50_us);
  reg.GetGauge("serve.slo.p90_us").Set(w.p90_us);
  reg.GetGauge("serve.slo.p99_us").Set(w.p99_us);
  reg.GetGauge("serve.slo.error_rate").Set(w.error_rate);
  reg.GetGauge("serve.slo.overrun_rate").Set(w.overrun_rate);
  reg.GetGauge("serve.slo.window_requests").Set(static_cast<double>(w.count));
  reg.GetGauge("serve.slo.degraded").Set(w.degraded ? 1.0 : 0.0);
}

}  // namespace obs
}  // namespace clara
