#include "src/obs/flight.h"

#include <algorithm>
#include <sstream>

#include "src/obs/json_util.h"

namespace clara {
namespace obs {

FlightRecorder::FlightRecorder(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void FlightRecorder::Record(FlightRecord rec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
  } else {
    ring_[next_] = std::move(rec);
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: insertion order is already oldest-first
  } else {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  std::vector<FlightRecord> records = Snapshot();
  uint64_t total = recorded();
  std::ostringstream os;
  os << "{\"capacity\":" << capacity_ << ",\"recorded\":" << total << ",\"records\":[";
  bool first = true;
  for (const FlightRecord& r : records) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"id\":" << r.id << ",\"trace_id\":" << r.trace_id << ",\"label\":\""
       << JsonEscape(r.label) << "\",\"outcome\":" << static_cast<int>(r.outcome)
       << ",\"cache_hit\":" << (r.cache_hit ? "true" : "false")
       << ",\"done_us\":" << r.done_us << ",\"request_bytes\":" << r.request_bytes
       << ",\"queue_us\":" << r.queue_us << ",\"parse_us\":" << r.parse_us
       << ",\"infer_us\":" << r.infer_us << ",\"analyze_us\":" << r.analyze_us
       << ",\"encode_us\":" << r.encode_us << ",\"total_us\":" << r.total_us << "}";
  }
  os << "]}";
  return os.str();
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

}  // namespace obs
}  // namespace clara
