// Tiny JSON emission helpers shared by the metrics and trace sinks.
#ifndef SRC_OBS_JSON_UTIL_H_
#define SRC_OBS_JSON_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>

namespace clara {
namespace obs {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// JSON has no inf/nan; clamp to null-safe numbers.
inline std::string JsonNumber(double v) {
  if (std::isnan(v) || std::isinf(v)) {
    return "0";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace obs
}  // namespace clara

#endif  // SRC_OBS_JSON_UTIL_H_
