// Bottleneck attribution: which NIC resource binds an NF's performance, at
// what utilization, with the full per-resource picture behind the verdict.
//
// The performance model (src/nic/perf_model.cc) files one record per
// evaluation when telemetry is enabled; `clara_cli report` renders the
// latest record per NF. This is the §4.2 "where is the knee and why"
// evidence the paper presents, kept instead of thrown away.
#ifndef SRC_OBS_BOTTLENECK_H_
#define SRC_OBS_BOTTLENECK_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace clara {
namespace obs {

// One resource's state at the evaluated operating point.
struct ResourceSample {
  std::string resource;         // "CLS", "CTM", "IMEM", "EMEM", "EMEM$", "PKT", ...
  double rho = 0;               // bandwidth utilization in [0, ~1]
  double latency_cycles = 0;    // effective (contention-inflated) latency
};

struct BottleneckRecord {
  std::string nf;
  int cores = 0;
  double throughput_mpps = 0;
  double latency_us = 0;
  std::string bound_resource;   // "cores", "line-rate", or a memory resource
  double bound_rho = 0;         // utilization of the binding resource
  std::vector<ResourceSample> utils;

  std::string ToString() const;
  std::string ToJson() const;
};

// Keeps the latest record per NF name (bounded; oldest names evicted) plus a
// total evaluation count.
class BottleneckLedger {
 public:
  explicit BottleneckLedger(size_t max_nfs = 512) : max_nfs_(max_nfs) {}
  BottleneckLedger(const BottleneckLedger&) = delete;
  BottleneckLedger& operator=(const BottleneckLedger&) = delete;

  void Record(BottleneckRecord r);

  // Latest record per NF, sorted by name.
  std::vector<BottleneckRecord> Latest() const;
  // Latest record for one NF; false if none.
  bool LatestFor(const std::string& nf, BottleneckRecord* out) const;
  uint64_t total_records() const;
  std::string Render() const;
  void Clear();

  static BottleneckLedger& Global();

 private:
  size_t max_nfs_;
  mutable std::mutex mu_;
  std::map<std::string, BottleneckRecord> latest_;
  std::deque<std::string> insertion_order_;
  uint64_t total_ = 0;
};

}  // namespace obs
}  // namespace clara

#endif  // SRC_OBS_BOTTLENECK_H_
