// Master switch for Clara's cross-layer telemetry.
//
// Every instrumentation hook in the codebase is double-gated:
//
//   * compile time — defining CLARA_OBS_DISABLE turns Enabled() into a
//     constexpr `false`, so the hooks (all written as `if (obs::Enabled())`)
//     are dead-code-eliminated and the telemetry has literally zero cost;
//   * run time — with telemetry compiled in, Enabled() is a single relaxed
//     atomic load, false by default. Nothing allocates, locks, or reads a
//     clock until a front end (clara_cli --trace / report) opts in.
//
// The convention for metric names is `layer.component.name`, e.g.
// `nic.backend.rule.mul_expansion` or `ml.lstm.epoch_loss`.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>

namespace clara {
namespace obs {

#ifdef CLARA_OBS_DISABLE

inline constexpr bool kCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}

#else

inline constexpr bool kCompiledIn = true;

inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }
inline void SetEnabled(bool on) { EnabledFlag().store(on, std::memory_order_relaxed); }

#endif  // CLARA_OBS_DISABLE

// RAII scoped enable, for front ends and tests.
class EnabledScope {
 public:
  explicit EnabledScope(bool on = true) : prev_(Enabled()) { SetEnabled(on); }
  ~EnabledScope() { SetEnabled(prev_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool prev_;
};

}  // namespace obs
}  // namespace clara

#endif  // SRC_OBS_OBS_H_
