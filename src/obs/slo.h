// Rolling-window SLO tracker: sliding-window latency quantiles plus error /
// deadline-overrun burn rates, for gating a serving daemon on "p99 over the
// last minute" instead of process-lifetime aggregates.
//
// The window is a ring of fixed-duration slices, each holding exponential
// latency buckets and error/overrun counts. Recording touches only the
// current slice; reading merges the slices still inside the window, so a
// burst that happened two windows ago ages out instead of polluting the
// quantiles forever (the failure mode of the cumulative obs::Histogram).
//
// All timestamps are caller-supplied microseconds on one monotonic timeline
// (the serving engine passes its own steady-clock offsets), which keeps the
// tracker deterministic under test.
#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace clara {
namespace obs {

class SloTracker {
 public:
  struct Options {
    int64_t window_us = 60LL * 1000 * 1000;  // one minute
    int slices = 12;                         // 5 s granularity at the default
    // p99 latency threshold in microseconds; 0 disables the degraded signal.
    double p99_threshold_us = 0;
  };

  // Merged view of every slice still inside the window.
  struct Window {
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t overruns = 0;
    double p50_us = 0;
    double p90_us = 0;
    double p99_us = 0;
    double max_us = 0;
    double error_rate = 0;    // errors / count
    double overrun_rate = 0;  // overruns / count
    bool degraded = false;    // p99 over threshold (threshold > 0, count > 0)
  };

  SloTracker() : SloTracker(Options()) {}
  explicit SloTracker(Options opts);

  void Record(int64_t now_us, double latency_us, bool error, bool overrun);

  Window Snapshot(int64_t now_us) const;

  // Publishes the window as serve.slo.* gauges in the global registry
  // (p50/p90/p99_us, error_rate, overrun_rate, window_requests, degraded).
  void ExportGauges(int64_t now_us) const;

  const Options& options() const { return opts_; }

 private:
  struct Slice {
    int64_t start_us = -1;  // -1 = never used
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    uint64_t errors = 0;
    uint64_t overruns = 0;
    double max_us = 0;
  };

  // Rotates the ring forward so slices_[cur_] covers now_us.
  void Advance(int64_t now_us);
  static double MergedQuantile(const std::vector<uint64_t>& counts, uint64_t total,
                               double q, double max_us);

  Options opts_;
  int64_t slice_us_;
  mutable std::mutex mu_;
  std::vector<Slice> slices_;
  size_t cur_ = 0;
};

}  // namespace obs
}  // namespace clara

#endif  // SRC_OBS_SLO_H_
