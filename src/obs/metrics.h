// Thread-safe metrics registry: named counters, gauges and fixed-bucket
// histograms with quantile estimation.
//
// Handles returned by Get*() are stable for the life of the registry, so hot
// paths look a metric up once and then touch only lock-free atomics.
// Metric names follow the `layer.component.name` convention (see obs.h).
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace clara {
namespace obs {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  // Atomic increments for depth-style gauges (queue occupancy, live
  // connections): concurrent Add/Sub never lose updates, unlike the racy
  // read-modify-Set() pattern they replace.
  void Add(double d = 1) {
    double old = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(old, old + d, std::memory_order_relaxed)) {
    }
  }
  void Sub(double d = 1) { Add(-d); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]; one
// implicit overflow bucket catches the rest. Quantiles are estimated by
// linear interpolation inside the containing bucket, using the observed
// min/max to tighten the first and overflow buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  double mean() const;
  // q in [0, 1]; returns 0 with no observations.
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

  // bounds {start, start*factor, ...}, `n` entries.
  static std::vector<double> ExponentialBuckets(double start, double factor, int n);
  // bounds {start, start+step, ...}, `n` entries.
  static std::vector<double> LinearBuckets(double start, double step, int n);
  // General-purpose default: 1 .. ~5e8, factor 2.
  static std::vector<double> DefaultBuckets();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1 (overflow)
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};
  std::atomic<double> max_{0};
  std::atomic<bool> has_obs_{false};
  std::mutex minmax_mu_;  // min/max update only; reads are atomic loads
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;     // counter value or gauge value
  uint64_t count = 0;   // histogram observation count
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Creates on first use; returned references stay valid until Clear().
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  // `bounds` is honoured only on first creation; empty means DefaultBuckets().
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds = {});

  // All metrics, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;
  // Human-readable dump (clara_cli report).
  std::string Render() const;
  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;

  void Reset();  // zero every metric, keep registrations
  void Clear();  // drop all metrics (invalidates handles)

  size_t size() const;

  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace clara

#endif  // SRC_OBS_METRICS_H_
