#!/usr/bin/env python3
"""Compare two BENCH_*.json files and fail on regressions.

Each file is a JSON array of flat row objects (see bench/bench_util.h
JsonRows). Rows are matched across the two files by their string-valued
fields (e.g. {"phase": "lstm_fit", "threads": ...} matches on "phase"; the
key also includes any numeric fields named in --key). For every matched row,
each numeric metric is compared; a metric whose name suggests "bigger is
worse" (ms, us, sec, time, cycles, bytes) regresses when it grows, anything
else (throughput, mpps, score) regresses when it shrinks.

Exit status: 0 when no metric regresses by more than --threshold (default
10%), 1 otherwise, 2 on usage/IO errors.

Usage:
  tools/bench_diff.py baseline/BENCH_micro_kernels.json BENCH_micro_kernels.json
  tools/bench_diff.py --threshold 0.05 --key threads old.json new.json
  tools/bench_diff.py --self-test
"""

import argparse
import json
import sys

# Metric-name fragments where an increase is a regression.
COST_HINTS = ("ms", "us", "sec", "time", "cycles", "bytes", "latency", "error")


def is_cost_metric(name):
    lname = name.lower()
    return any(h in lname for h in COST_HINTS)


def row_key(row, extra_keys):
    """Identity of a row: its string fields plus any opted-in numeric fields."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str) or k in extra_keys:
            parts.append((k, str(v)))
    return tuple(parts)


def load_rows(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"bench_diff: cannot read {path}: {e}")
    if not isinstance(data, list) or not all(isinstance(r, dict) for r in data):
        raise SystemExit(f"bench_diff: {path}: expected a JSON array of row objects")
    return data


def compare(base_rows, new_rows, threshold, extra_keys):
    """Returns (regressions, messages). Unmatched rows are reported, not fatal."""
    base_by_key = {}
    for row in base_rows:
        base_by_key.setdefault(row_key(row, extra_keys), []).append(row)
    regressions = []
    notes = []
    matched = 0
    for row in new_rows:
        key = row_key(row, extra_keys)
        bucket = base_by_key.get(key)
        if not bucket:
            notes.append(f"  new row (no baseline): {dict(key)}")
            continue
        base = bucket.pop(0)
        matched += 1
        for name, new_v in row.items():
            if not isinstance(new_v, (int, float)) or isinstance(new_v, bool):
                continue
            if name in extra_keys:
                continue  # part of the identity, not a metric
            old_v = base.get(name)
            if not isinstance(old_v, (int, float)) or isinstance(old_v, bool):
                continue
            if old_v == 0:
                continue  # no meaningful ratio
            delta = (new_v - old_v) / abs(old_v)
            worse = delta if is_cost_metric(name) else -delta
            direction = "+" if delta >= 0 else ""
            desc = (f"{dict(key)} {name}: {old_v:g} -> {new_v:g} "
                    f"({direction}{delta * 100:.1f}%)")
            if worse > threshold:
                regressions.append("  REGRESSION " + desc)
            else:
                notes.append("  ok " + desc)
    for key, leftovers in base_by_key.items():
        for _ in leftovers:
            notes.append(f"  baseline row disappeared: {dict(key)}")
    if matched == 0:
        regressions.append("  REGRESSION no rows matched between the two files")
    return regressions, notes


def self_test():
    base = [{"phase": "fit", "threads": 1, "ms": 100.0},
            {"phase": "fit", "threads": 8, "ms": 30.0},
            {"phase": "sweep", "mpps": 12.0}]
    # 5% slower: within the default 10% threshold.
    ok_new = [{"phase": "fit", "threads": 1, "ms": 105.0},
              {"phase": "fit", "threads": 8, "ms": 30.0},
              {"phase": "sweep", "mpps": 12.5}]
    reg, _ = compare(base, ok_new, 0.10, {"threads"})
    assert not reg, reg
    # 50% slower on one row: must regress.
    bad_new = [{"phase": "fit", "threads": 1, "ms": 150.0},
               {"phase": "fit", "threads": 8, "ms": 30.0},
               {"phase": "sweep", "mpps": 12.0}]
    reg, _ = compare(base, bad_new, 0.10, {"threads"})
    assert len(reg) == 1, reg
    # Throughput dropping 20% must regress too.
    slow_new = [{"phase": "fit", "threads": 1, "ms": 100.0},
                {"phase": "fit", "threads": 8, "ms": 30.0},
                {"phase": "sweep", "mpps": 9.0}]
    reg, _ = compare(base, slow_new, 0.10, {"threads"})
    assert len(reg) == 1, reg
    # Disjoint files: fail loudly instead of vacuously passing.
    reg, _ = compare(base, [{"phase": "other", "ms": 1.0}], 0.10, set())
    assert reg, "disjoint files must not pass"
    print("bench_diff self-test: OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?", help="baseline BENCH_*.json")
    ap.add_argument("candidate", nargs="?", help="candidate BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed fractional regression (default 0.10 = 10%%)")
    ap.add_argument("--key", action="append", default=[],
                    help="numeric field to treat as row identity (repeatable)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in self test and exit")
    ap.add_argument("-v", "--verbose", action="store_true",
                    help="also print non-regressing comparisons")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        ap.error("baseline and candidate files are required")
    extra_keys = set(args.key)
    regressions, notes = compare(load_rows(args.baseline), load_rows(args.candidate),
                                 args.threshold, extra_keys)
    if args.verbose:
        for n in notes:
            print(n)
    if regressions:
        print(f"bench_diff: {args.candidate} vs {args.baseline}:")
        for r in regressions:
            print(r)
        return 1
    print(f"bench_diff: no regression > {args.threshold * 100:.0f}% "
          f"({args.candidate} vs {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
