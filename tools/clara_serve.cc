// clara_serve — the Clara insight-serving daemon.
//
// Loads a pre-trained model bundle from the artifact store (written by
// `clara_cli train --model-dir=DIR`) and answers insight requests over a
// length-prefixed wire protocol (src/serve/proto.h) without ever retraining.
//
// Transports:
//   --pipe          read request frames from stdin, write response frames to
//                   stdout (the default; composes with clara_client --emit)
//   --socket=PATH   listen on a Unix domain socket. The default transport is
//                   an epoll event loop (src/serve/eventloop.h) serving many
//                   clients concurrently: per-connection frame reassembly, a
//                   sharded worker pool feeding the engine queue
//                   (--shards=N), and bounded per-connection write buffers
//                   (--max-outbound-bytes) that disconnect slow readers.
//                   --transport=sequential keeps the legacy one-connection-
//                   at-a-time loop for byte-identity comparisons. Either
//                   way, a failed connection is dropped and logged — the
//                   daemon keeps serving the others. Socket mode takes a
//                   flock()'d "<socket>.pid" pidfile before unlinking the
//                   path, so a second daemon refuses to start instead of
//                   deleting a live sibling's socket.
//
// All requests buffered at once are micro-batched through the serving
// engine, so N concurrent insight requests share one parallel per-block
// inference pass (connections on different shards batch together through
// the shared Submit() funnel). Malformed payloads and oversized frames get
// structured error responses; SIGINT/SIGTERM shut the daemon down cleanly.
//
// Self-healing plane:
//   * SIGHUP (or a control Reload frame) hot-reloads the bundle from
//     --model-dir: the candidate is CRC-checked and canary-validated off the
//     serving path, then atomically swapped in; in-flight batches finish on
//     the old model and a rejected candidate leaves it serving. Health
//     reports the bumped artifact_version.
//   * --fault=SPEC (or CLARA_FAULT=SPEC) arms the deterministic fault
//     injector — "site:prob[:seed]" entries, see src/util/fault.h — strictly
//     AFTER the initial bundle load, so chaos sweeps over binio/artifact
//     sites cannot prevent startup. Injections surface in the stats
//     envelope's "fault" object.
//   * --slo-p99-us also arms brownout degradation: when the rolling p99
//     blows the budget the engine sheds low-priority work with kShedded +
//     retry hints and drops to int8 inference until the window recovers.
//
// Telemetry plane:
//   * Control frames (stats/health/dump/reload) are answered immediately,
//     without entering the request queue — `clara_client stats
//     --socket=PATH` etc.
//   * --trace=FILE records every request's per-stage span tree and writes a
//     Chrome trace (chrome://tracing / Perfetto) at shutdown.
//   * --metrics-jsonl=FILE appends a metrics snapshot every
//     --metrics-interval=MS milliseconds — a time series, not just the
//     shutdown snapshot.
//   * SIGUSR1 dumps the flight recorder (recent requests) to stderr.
//
// Usage:
//   clara_cli train --model-dir=models/
//   clara_client --emit --element=aggcounter --count=4 \
//     | clara_serve --model-dir=models/ --pipe \
//     | clara_client --decode
#include <errno.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/ml/simd.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/serve/artifact.h"
#include "src/serve/eventloop.h"
#include "src/serve/server.h"
#include "src/util/fault.h"
#include "src/util/net.h"
#include "src/util/pidfile.h"

namespace {

using namespace clara;

// Lock-free atomic<int> stores are async-signal-safe, and unlike plain
// sig_atomic_t these flags are also read from the epoll loop thread while a
// signal handler may run on any thread.
std::atomic<int> g_stop{0};
std::atomic<int> g_dump_flight{0};
std::atomic<int> g_reload{0};

void OnSignal(int) { g_stop = 1; }

void OnDumpSignal(int) { g_dump_flight = 1; }

void OnReloadSignal(int) { g_reload = 1; }

void InstallSignalHandlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  // No SA_RESTART: blocking read()/accept() must return EINTR so the main
  // loop can observe g_stop (and g_dump_flight / g_reload).
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sa.sa_handler = OnDumpSignal;
  sigaction(SIGUSR1, &sa, nullptr);
  sa.sa_handler = OnReloadSignal;
  sigaction(SIGHUP, &sa, nullptr);
}

// SIGUSR1: operator asked for the flight recorder. Checked from the serve
// loops whenever a blocking call returns.
void MaybeDumpFlight(serve::ServeEngine& engine) {
  if (g_dump_flight != 0) {
    g_dump_flight = 0;
    std::string dump = engine.DumpJson();
    std::fprintf(stderr, "clara_serve: flight recorder dump:\n%s\n", dump.c_str());
  }
}

// SIGHUP: hot-reload the artifact. A rejected candidate is logged and the
// old model keeps serving — reload never takes the daemon down.
void MaybeReload(serve::ServeEngine& engine, const std::string& bundle_path) {
  if (g_reload == 0) {
    return;
  }
  g_reload = 0;
  std::string error;
  if (engine.ReloadFromFile(bundle_path, &error)) {
    std::fprintf(stderr, "clara_serve: reloaded %s (artifact_version %llu)\n",
                 bundle_path.c_str(),
                 static_cast<unsigned long long>(engine.artifact_version()));
  } else {
    std::fprintf(stderr, "clara_serve: reload rejected, keeping current model: %s\n",
                 error.c_str());
  }
}

// Serves one byte stream (pipe or accepted socket connection) until EOF or
// shutdown. Frames buffered together are submitted together, so the engine
// micro-batches them; responses are written back in request order.
int ServeStream(serve::ServeEngine& engine, const std::string& bundle_path, int in_fd,
                int out_fd) {
  serve::FrameReader reader;
  char buf[1 << 16];
  while (g_stop == 0) {
    MaybeDumpFlight(engine);
    MaybeReload(engine, bundle_path);
    size_t n = 0;
    std::string io_error;
    net::IoStatus st = net::ReadSome(in_fd, buf, sizeof(buf), &n, &io_error);
    if (st == net::IoStatus::kInterrupted) {
      continue;  // signal: re-check the flags
    }
    if (st == net::IoStatus::kError) {
      std::fprintf(stderr, "clara_serve: %s\n", io_error.c_str());
      return 1;
    }
    if (st == net::IoStatus::kEof) {
      break;
    }
    reader.Feed(buf, n);

    std::vector<std::future<serve::InsightResponse>> futures;
    std::string frame;
    std::string out;
    while (reader.Next(&frame)) {
      // Control-plane frames bypass the request queue entirely: stats/health
      // stay responsive even when the queue is saturated.
      if (serve::PeekType(frame) == serve::MsgType::kControlRequest) {
        serve::AppendFrame(&out, engine.HandleControl(frame));
        continue;
      }
      serve::InsightRequest req;
      std::string err;
      if (!serve::ParseRequest(frame, &req, &err)) {
        serve::AppendFrame(&out, serve::ServeEngine::EncodeTransportError(
                                     serve::ErrorCode::kBadRequest, err));
        continue;
      }
      futures.push_back(engine.Submit(std::move(req), static_cast<uint32_t>(frame.size())));
    }
    for (size_t i = reader.TakeOversized(); i > 0; --i) {
      serve::AppendFrame(&out, serve::ServeEngine::EncodeTransportError(
                                   serve::ErrorCode::kOversized,
                                   "frame exceeds the 1 MiB limit"));
    }
    for (auto& f : futures) {
      serve::AppendFrame(&out, serve::EncodeResponse(f.get()));
    }
    if (!out.empty() && !net::WriteAll(out_fd, out, &io_error)) {
      std::fprintf(stderr, "clara_serve: %s\n", io_error.c_str());
      return 1;
    }
  }
  return 0;
}

// Legacy sequential socket transport (--transport=sequential): accepts one
// connection, serves it to completion, then accepts the next. Kept as the
// byte-identity reference for the epoll loop (tests/serve_load.sh compares
// responses across the two) and for debugging. The caller must already hold
// the socket's pidfile lock — the unlink below is only safe then.
int ServeSocket(serve::ServeEngine& engine, const std::string& bundle_path,
                const std::string& path) {
  int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::fprintf(stderr, "clara_serve: socket: %s\n", std::strerror(errno));
    return 1;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "clara_serve: socket path too long: %s\n", path.c_str());
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket; our flock'd pidfile proves no live owner
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 8) < 0) {
    std::fprintf(stderr, "clara_serve: bind/listen %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "clara_serve: listening on %s\n", path.c_str());
  int rc = 0;
  while (g_stop == 0) {
    MaybeDumpFlight(engine);
    MaybeReload(engine, bundle_path);
    int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "clara_serve: accept: %s\n", std::strerror(errno));
      rc = 1;
      break;
    }
    // Fault site sock.accept: the connection is dropped before a byte is
    // exchanged — the client sees a reset, the daemon serves the next one.
    if (fault::Armed() && fault::ShouldFail(fault::Site::kSockAccept)) {
      ::close(conn);
      continue;
    }
    // A connection that fails mid-stream (client vanished, injected socket
    // fault) is that connection's problem, not the daemon's: log, drop,
    // keep accepting.
    if (ServeStream(engine, bundle_path, conn, conn) != 0) {
      std::fprintf(stderr, "clara_serve: connection dropped\n");
      if (obs::Enabled()) {
        obs::MetricsRegistry::Global().GetCounter("serve.conn.dropped").Add(1);
      }
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return rc;
}

// Default socket transport: the epoll multi-client event loop. The tick
// callback runs the signal-flag work (flight dump, SIGHUP reload) on the
// loop thread between epoll waits.
int ServeEpoll(serve::ServeEngine& engine, const std::string& bundle_path,
               serve::EventLoopOptions opts) {
  std::string path = opts.socket_path;
  serve::EventLoop loop(engine, std::move(opts));
  std::string error;
  if (!loop.Init(&error)) {
    std::fprintf(stderr, "clara_serve: %s\n", error.c_str());
    return 1;
  }
  engine.SetTransportStatsProvider([&loop] { return loop.StatsJson(); });
  std::fprintf(stderr, "clara_serve: listening on %s (epoll, %zu shard(s))\n",
               path.c_str(), loop.shards());
  int rc = loop.Run(&g_stop, [&engine, &bundle_path] {
    MaybeDumpFlight(engine);
    MaybeReload(engine, bundle_path);
  });
  engine.SetTransportStatsProvider(nullptr);
  return rc;
}

int Usage() {
  std::fprintf(stderr,
               "usage: clara_serve --model-dir=DIR [--pipe | --socket=PATH]\n"
               "                   [--transport=epoll|sequential] [--shards=N]\n"
               "                   [--max-outbound-bytes=N] [--max-conns=N]\n"
               "                   [--queue=N] [--batch=N] [--cache=N]\n"
               "                   [--profile-packets=N]\n"
               "                   [--infer=f64|f32|int8]\n"
               "                   [--metrics-json=FILE] [--trace=FILE]\n"
               "                   [--slo-p99-us=X] [--slo-window-ms=N] [--flight=N]\n"
               "                   [--metrics-jsonl=FILE] [--metrics-interval=MS]\n"
               "                   [--fault=site:prob[:seed],...]\n"
               "                   [--brownout-exit-margin=X]\n"
               "                   [--brownout-exit-hold-ms=N]\n"
               "                   [--brownout-retry-after-ms=N]\n"
               "Serves Clara offloading insights from a pre-trained bundle\n"
               "(create one with `clara_cli train --model-dir=DIR`).\n"
               "SIGHUP hot-reloads the bundle; SIGUSR1 dumps the flight\n"
               "recorder to stderr; clara_client stats|health|dump|reload\n"
               "query a --socket daemon live. --fault / CLARA_FAULT arm the\n"
               "deterministic fault injector (after the initial load).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_dir;
  std::string socket_path;
  std::string transport = "epoll";
  serve::EventLoopOptions loop_opts;
  std::string metrics_path;
  std::string trace_path;
  std::string metrics_jsonl_path;
  std::string fault_spec;
  int64_t metrics_interval_ms = 1000;
  serve::ServeOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--model-dir=", 0) == 0) {
      model_dir = a.substr(std::strlen("--model-dir="));
    } else if (a == "--pipe") {
      // default transport
    } else if (a.rfind("--socket=", 0) == 0) {
      socket_path = a.substr(std::strlen("--socket="));
    } else if (a.rfind("--transport=", 0) == 0) {
      transport = a.substr(std::strlen("--transport="));
      if (transport != "epoll" && transport != "sequential") {
        std::fprintf(stderr, "clara_serve: unknown --transport '%s'\n",
                     transport.c_str());
        return Usage();
      }
    } else if (a.rfind("--shards=", 0) == 0) {
      loop_opts.shards = std::strtoul(a.c_str() + std::strlen("--shards="), nullptr, 10);
    } else if (a.rfind("--max-outbound-bytes=", 0) == 0) {
      loop_opts.max_outbound_bytes =
          std::strtoul(a.c_str() + std::strlen("--max-outbound-bytes="), nullptr, 10);
    } else if (a.rfind("--max-conns=", 0) == 0) {
      loop_opts.max_connections =
          std::strtoul(a.c_str() + std::strlen("--max-conns="), nullptr, 10);
    } else if (a.rfind("--profile-packets=", 0) == 0) {
      opts.profile_packets =
          std::strtoul(a.c_str() + std::strlen("--profile-packets="), nullptr, 10);
    } else if (a.rfind("--queue=", 0) == 0) {
      opts.queue_capacity = std::strtoul(a.c_str() + std::strlen("--queue="), nullptr, 10);
    } else if (a.rfind("--batch=", 0) == 0) {
      opts.max_batch = std::strtoul(a.c_str() + std::strlen("--batch="), nullptr, 10);
    } else if (a.rfind("--cache=", 0) == 0) {
      opts.cache_capacity = std::strtoul(a.c_str() + std::strlen("--cache="), nullptr, 10);
    } else if (a.rfind("--infer=", 0) == 0) {
      if (!ParseInferBackend(a.substr(std::strlen("--infer=")), &opts.infer_backend)) {
        std::fprintf(stderr, "clara_serve: unknown --infer backend '%s'\n",
                     a.c_str() + std::strlen("--infer="));
        return Usage();
      }
    } else if (a.rfind("--metrics-json=", 0) == 0) {
      metrics_path = a.substr(std::strlen("--metrics-json="));
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(std::strlen("--trace="));
    } else if (a.rfind("--slo-p99-us=", 0) == 0) {
      opts.slo_p99_us = std::strtod(a.c_str() + std::strlen("--slo-p99-us="), nullptr);
    } else if (a.rfind("--slo-window-ms=", 0) == 0) {
      opts.slo_window_ms =
          std::strtoll(a.c_str() + std::strlen("--slo-window-ms="), nullptr, 10);
    } else if (a.rfind("--flight=", 0) == 0) {
      opts.flight_capacity = std::strtoul(a.c_str() + std::strlen("--flight="), nullptr, 10);
    } else if (a.rfind("--metrics-jsonl=", 0) == 0) {
      metrics_jsonl_path = a.substr(std::strlen("--metrics-jsonl="));
    } else if (a.rfind("--metrics-interval=", 0) == 0) {
      metrics_interval_ms =
          std::strtoll(a.c_str() + std::strlen("--metrics-interval="), nullptr, 10);
    } else if (a.rfind("--brownout-exit-margin=", 0) == 0) {
      opts.brownout_exit_margin =
          std::strtod(a.c_str() + std::strlen("--brownout-exit-margin="), nullptr);
    } else if (a.rfind("--brownout-exit-hold-ms=", 0) == 0) {
      opts.brownout_exit_hold_ms =
          std::strtoll(a.c_str() + std::strlen("--brownout-exit-hold-ms="), nullptr, 10);
    } else if (a.rfind("--brownout-retry-after-ms=", 0) == 0) {
      opts.brownout_retry_after_ms = static_cast<uint32_t>(
          std::strtoul(a.c_str() + std::strlen("--brownout-retry-after-ms="), nullptr, 10));
    } else if (a.rfind("--fault=", 0) == 0) {
      if (!fault_spec.empty()) {
        fault_spec += ",";
      }
      fault_spec += a.substr(std::strlen("--fault="));
    } else {
      return Usage();
    }
  }
  if (model_dir.empty() || opts.queue_capacity == 0 || opts.max_batch == 0 ||
      opts.profile_packets == 0 || loop_opts.max_outbound_bytes == 0 ||
      loop_opts.max_connections == 0 ||
      opts.slo_window_ms <= 0 || metrics_interval_ms <= 0 ||
      opts.brownout_exit_margin <= 0 || opts.brownout_exit_margin > 1 ||
      opts.brownout_exit_hold_ms < 0) {
    return Usage();
  }

  std::string bundle_path = serve::BundlePath(model_dir);
  TrainedBundle bundle;
  std::string error;
  if (!serve::LoadBundleFile(bundle_path, &bundle, &error)) {
    std::fprintf(stderr, "clara_serve: %s\n", error.c_str());
    return 1;
  }
  obs::SetEnabled(true);
  InstallSignalHandlers();

  obs::TraceSink sink;
  if (!trace_path.empty()) {
    obs::SetGlobalTrace(&sink);
  }
  obs::PeriodicJsonlExporter exporter(metrics_jsonl_path,
                                      std::chrono::milliseconds(metrics_interval_ms));
  if (!metrics_jsonl_path.empty() && !exporter.Start()) {
    std::fprintf(stderr, "clara_serve: cannot open %s\n", metrics_jsonl_path.c_str());
    return 1;
  }

  serve::ServeEngine engine(std::move(bundle), opts);
  engine.SetReloadPath(bundle_path);
  std::fprintf(stderr, "clara_serve: inference backend %s (simd: %s)\n",
               InferBackendName(opts.infer_backend), simd::FeatureString().c_str());

  // Arm fault injection only now, after the initial bundle loaded and the
  // engine exists: a chaos sweep over the binio/artifact sites must exercise
  // the serving and reload paths, not prevent startup.
  if (!fault::ConfigureFromEnv(&error) || !fault::Configure(fault_spec, &error)) {
    std::fprintf(stderr, "clara_serve: bad fault spec: %s\n", error.c_str());
    return Usage();
  }
  if (fault::Armed()) {
    std::fprintf(stderr, "clara_serve: fault injection armed\n");
  }

  // Socket modes claim the endpoint before touching the socket file: the
  // flock'd pidfile makes "unlink a stale socket" safe and a second daemon
  // on the same path fail fast instead of stealing a live sibling's socket.
  util::PidFile pidfile;
  if (!socket_path.empty() && !pidfile.Acquire(socket_path + ".pid", &error)) {
    std::fprintf(stderr,
                 "clara_serve: refusing to start: %s (is another clara_serve "
                 "already serving %s?)\n",
                 error.c_str(), socket_path.c_str());
    return 1;
  }

  engine.Start();
  int rc;
  if (socket_path.empty()) {
    rc = ServeStream(engine, bundle_path, STDIN_FILENO, STDOUT_FILENO);
  } else if (transport == "sequential") {
    rc = ServeSocket(engine, bundle_path, socket_path);
  } else {
    loop_opts.socket_path = socket_path;
    rc = ServeEpoll(engine, bundle_path, loop_opts);
  }
  engine.Stop();

  exporter.Stop();
  if (!trace_path.empty()) {
    obs::SetGlobalTrace(nullptr);
    if (sink.WriteChromeJson(trace_path)) {
      std::fprintf(stderr, "clara_serve: wrote %zu trace event(s) to %s\n", sink.size(),
                   trace_path.c_str());
    } else {
      std::fprintf(stderr, "clara_serve: cannot write %s\n", trace_path.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f != nullptr) {
      std::string json = obs::MetricsRegistry::Global().ToJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "clara_serve: cannot write %s\n", metrics_path.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  std::fprintf(stderr, "clara_serve: shut down cleanly\n");
  return rc;
}
