// clara_cli — command-line front end to the Clara library.
//
// Subcommands:
//   list                          the NF element registry (Table 2 style)
//   show <element>                pseudo-Click source + lowered IR summary
//   ir <element>                  full lowered IR dump
//   asm <element>                 simulated NIC machine code per block
//   profile <element> [small|large]   trace-driven workload profile
//   insights <element> [small|large]  full Clara analysis (trains models)
//
// Examples:
//   clara_cli list
//   clara_cli asm aggcounter
//   clara_cli insights mazunat small
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/analyzer.h"
#include "src/elements/elements.h"
#include "src/ir/classify.h"
#include "src/ir/printer.h"
#include "src/lang/interp.h"
#include "src/lang/lower.h"
#include "src/lang/printer.h"
#include "src/nic/backend.h"
#include "src/workload/workload.h"

namespace {

using namespace clara;

int Usage() {
  std::fprintf(stderr,
               "usage: clara_cli <command> [args]\n"
               "  list                       NF element registry\n"
               "  show <element>             pseudo-Click source + IR summary\n"
               "  ir <element>               lowered IR dump\n"
               "  asm <element>              simulated NIC machine code\n"
               "  profile <element> [small|large]\n"
               "  insights <element> [small|large]\n");
  return 2;
}

WorkloadSpec PickWorkload(int argc, char** argv, int index) {
  if (argc > index && std::strcmp(argv[index], "large") == 0) {
    return WorkloadSpec::LargeFlows();
  }
  return WorkloadSpec::SmallFlows();
}

int CmdList() {
  std::printf("%-14s %-8s insights\n", "element", "stateful");
  for (const auto& info : ElementRegistry()) {
    std::string tags;
    for (size_t i = 0; i < info.insights.size(); ++i) {
      tags += (i ? "," : "") + info.insights[i];
    }
    std::printf("%-14s %-8s %s\n", info.name.c_str(), info.stateful ? "yes" : "no",
                tags.c_str());
  }
  return 0;
}

int CmdShow(const std::string& name) {
  Program p = MakeElementByName(name);
  std::printf("%s\n", ToSource(p).c_str());
  LowerResult lr = LowerProgram(p);
  if (!lr.ok) {
    std::fprintf(stderr, "lowering failed: %s\n", lr.error.c_str());
    return 1;
  }
  BlockCounts c = CountFunction(lr.module.functions[0]);
  std::printf("// lowered: %zu blocks, %u instrs (%u compute, %u stateless mem, "
              "%u stateful mem, %u API calls)\n",
              lr.module.functions[0].blocks.size(),
              lr.module.functions[0].NumInstructions(), c.compute, c.stateless_mem,
              c.stateful_mem, c.api_calls);
  return 0;
}

int CmdIr(const std::string& name) {
  Program p = MakeElementByName(name);
  LowerResult lr = LowerProgram(p);
  if (!lr.ok) {
    std::fprintf(stderr, "lowering failed: %s\n", lr.error.c_str());
    return 1;
  }
  std::printf("%s", ToString(lr.module).c_str());
  return 0;
}

int CmdAsm(const std::string& name) {
  Program p = MakeElementByName(name);
  LowerResult lr = LowerProgram(p);
  if (!lr.ok) {
    std::fprintf(stderr, "lowering failed: %s\n", lr.error.c_str());
    return 1;
  }
  NicProgram nic = CompileToNic(lr.module);
  const Function& f = lr.module.functions[0];
  for (size_t b = 0; b < nic.blocks.size(); ++b) {
    std::printf("^%s:  ; compute=%u api=%u mem_state=%u mem_pkt=%u lmem=%u\n",
                f.blocks[b].label.c_str(), nic.blocks[b].counts.compute,
                nic.blocks[b].counts.api_compute, nic.blocks[b].counts.mem_state,
                nic.blocks[b].counts.mem_packet, nic.blocks[b].counts.mem_lmem);
    for (const auto& instr : nic.blocks[b].instrs) {
      std::printf("    %s\n", ToString(instr, lr.module).c_str());
    }
  }
  NicBlockCounts t = nic.Totals();
  std::printf("; totals: %u compute + %u api-compute, %u state mem, %u pkt mem\n",
              t.compute, t.api_compute, t.mem_state, t.mem_packet);
  return 0;
}

int CmdProfile(const std::string& name, const WorkloadSpec& workload) {
  NfInstance nf(MakeElementByName(name));
  if (!nf.ok()) {
    std::fprintf(stderr, "error: %s\n", nf.error().c_str());
    return 1;
  }
  Trace trace = GenerateTrace(workload, 5000);
  for (auto& pkt : trace.packets) {
    pkt.in_port = pkt.src_ip & 1;
    nf.Process(pkt);
  }
  const NfProfile& prof = nf.profile();
  std::printf("workload: %s (%u flows, %uB packets)\n", workload.name.c_str(),
              workload.num_flows, workload.pkt_size);
  std::printf("packets: %llu  sends: %llu  drops: %llu\n",
              static_cast<unsigned long long>(prof.packets),
              static_cast<unsigned long long>(prof.sends),
              static_cast<unsigned long long>(prof.drops));
  std::printf("\nstate accesses per packet:\n");
  for (size_t v = 0; v < nf.module().state.size(); ++v) {
    std::printf("  %-16s %8.3f reads  %8.3f writes  (%llu bytes)\n",
                nf.module().state[v].name.c_str(),
                static_cast<double>(prof.state_reads[v]) / prof.packets,
                static_cast<double>(prof.state_writes[v]) / prof.packets,
                static_cast<unsigned long long>(nf.module().state[v].SizeBytes()));
  }
  std::printf("\nframework API calls per packet:\n");
  for (const auto& [api, count] : prof.api_calls) {
    std::printf("  %-16s %8.3f\n", api.c_str(),
                static_cast<double>(count) / prof.packets);
  }
  return 0;
}

int CmdInsights(const std::string& name, const WorkloadSpec& workload) {
  AnalyzerOptions options;
  options.predictor.train_programs = 150;
  options.predictor.lstm.epochs = 10;
  options.scaleout.train_programs = 60;
  options.colocation.train_nfs = 24;
  options.colocation.train_groups = 60;
  options.algo_corpus_per_class = 25;
  ClaraAnalyzer analyzer(options);
  std::printf("training Clara (one-time)...\n");
  std::vector<Program> corpus;
  for (const auto& info : ElementRegistry()) {
    corpus.push_back(info.make());
  }
  std::vector<const Program*> ptrs;
  for (const auto& p : corpus) {
    ptrs.push_back(&p);
  }
  analyzer.Train(ptrs);
  OffloadingInsights insights = analyzer.Analyze(MakeElementByName(name), workload);
  std::printf("%s", insights.ToString(analyzer.perf_model().config()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "list") {
    return CmdList();
  }
  if (argc < 3) {
    return Usage();
  }
  std::string element = argv[2];
  if (cmd == "show") {
    return CmdShow(element);
  }
  if (cmd == "ir") {
    return CmdIr(element);
  }
  if (cmd == "asm") {
    return CmdAsm(element);
  }
  if (cmd == "profile") {
    return CmdProfile(element, PickWorkload(argc, argv, 3));
  }
  if (cmd == "insights") {
    return CmdInsights(element, PickWorkload(argc, argv, 3));
  }
  return Usage();
}
