// clara_cli — command-line front end to the Clara library.
//
// Subcommands:
//   list                          the NF element registry (Table 2 style)
//   show <element>                pseudo-Click source + lowered IR summary
//   ir <element>                  full lowered IR dump
//   asm <element>                 simulated NIC machine code per block
//   profile <element> [small|large]   trace-driven workload profile
//   insights <element> [small|large]  full Clara analysis (trains models,
//                                 or loads a bundle with --model-dir)
//   train                         train all models once and save the bundle
//                                 to --model-dir (artifact store)
//   report [element...]           telemetry report: per-region utilization,
//                                 bottleneck attribution, backend rule
//                                 firings (defaults to the whole registry);
//                                 with --model-dir also exercises the serve
//                                 engine so serve.* metrics appear
//
// Global flags (any command):
//   --trace=out.json        emit a Chrome-trace (chrome://tracing) span file
//   --trace-jsonl=out.jsonl same events, one JSON object per line
//   --metrics-json=out.json dump the metrics registry as JSON on exit
//   --model-dir=DIR         model artifact directory (train writes, insights/
//                           report read)
//
// Examples:
//   clara_cli list
//   clara_cli asm aggcounter
//   clara_cli profile aggcounter --trace=trace.json
//   clara_cli report aggcounter heavyhitter mazunat
//   clara_cli train --model-dir=models/
//   clara_cli insights mazunat small --model-dir=models/
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "src/core/analyzer.h"
#include "src/elements/elements.h"
#include "src/ir/classify.h"
#include "src/ir/printer.h"
#include "src/lang/interp.h"
#include "src/lang/lower.h"
#include "src/lang/printer.h"
#include "src/nic/backend.h"
#include "src/nic/demand.h"
#include "src/obs/bottleneck.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/serve/artifact.h"
#include "src/serve/server.h"
#include "src/util/parallel.h"
#include "src/workload/workload.h"

namespace {

using namespace clara;

// --infer= backend for insights/report analysis and the report serve engine.
InferBackend g_infer = InferBackend::kF64;

int Usage() {
  std::fprintf(stderr,
               "usage: clara_cli [flags] <command> [args]\n"
               "  list                       NF element registry\n"
               "  show <element>             pseudo-Click source + IR summary\n"
               "  ir <element>               lowered IR dump\n"
               "  asm <element>              simulated NIC machine code\n"
               "  profile <element> [small|large]\n"
               "  insights <element> [small|large]\n"
               "  train                      train all models, save bundle to --model-dir\n"
               "                             (--fast: small CI-sized training corpus)\n"
               "  report [element...]        telemetry report (default: all)\n"
               "flags:\n"
               "  --trace=FILE               Chrome-trace JSON (chrome://tracing)\n"
               "  --trace-jsonl=FILE         trace events as JSONL\n"
               "  --metrics-json=FILE        metrics registry dump as JSON\n"
               "  --model-dir=DIR            model artifact directory. `train` writes a\n"
               "                             checksummed bundle there once; `insights`\n"
               "                             then loads it and skips in-process training\n"
               "                             entirely (typically 10-100x faster end to\n"
               "                             end; see bench/baselines/BENCH_serve_latency\n"
               "                             .json for measured cold-vs-warm numbers).\n"
               "                             `report` uses it to run the serve engine so\n"
               "                             serve.* metrics show up in the registry.\n"
               "  --threads=N                worker threads for parallel phases\n"
               "                             (default: CLARA_THREADS or all cores)\n"
               "  --infer=f64|f32|int8       LSTM inference backend for insights/report\n"
               "                             (default f64; f32/int8 use the SIMD engine)\n");
  return 2;
}

WorkloadSpec PickWorkload(const std::vector<std::string>& args, size_t index) {
  if (args.size() > index && args[index] == "large") {
    return WorkloadSpec::LargeFlows();
  }
  return WorkloadSpec::SmallFlows();
}

// Accepts both `aggcounter` and `examples/aggcounter` spellings.
std::string ElementName(const std::string& arg) {
  size_t slash = arg.rfind('/');
  return slash == std::string::npos ? arg : arg.substr(slash + 1);
}

int CmdList() {
  std::printf("%-14s %-8s insights\n", "element", "stateful");
  for (const auto& info : ElementRegistry()) {
    std::string tags;
    for (size_t i = 0; i < info.insights.size(); ++i) {
      tags += (i ? "," : "") + info.insights[i];
    }
    std::printf("%-14s %-8s %s\n", info.name.c_str(), info.stateful ? "yes" : "no",
                tags.c_str());
  }
  return 0;
}

int CmdShow(const std::string& name) {
  Program p = MakeElementByName(name);
  std::printf("%s\n", ToSource(p).c_str());
  LowerResult lr = LowerProgram(p);
  if (!lr.ok) {
    std::fprintf(stderr, "lowering failed: %s\n", lr.error.c_str());
    return 1;
  }
  BlockCounts c = CountFunction(lr.module.functions[0]);
  std::printf("// lowered: %zu blocks, %u instrs (%u compute, %u stateless mem, "
              "%u stateful mem, %u API calls)\n",
              lr.module.functions[0].blocks.size(),
              lr.module.functions[0].NumInstructions(), c.compute, c.stateless_mem,
              c.stateful_mem, c.api_calls);
  return 0;
}

int CmdIr(const std::string& name) {
  Program p = MakeElementByName(name);
  LowerResult lr = LowerProgram(p);
  if (!lr.ok) {
    std::fprintf(stderr, "lowering failed: %s\n", lr.error.c_str());
    return 1;
  }
  std::printf("%s", ToString(lr.module).c_str());
  return 0;
}

int CmdAsm(const std::string& name) {
  Program p = MakeElementByName(name);
  LowerResult lr = LowerProgram(p);
  if (!lr.ok) {
    std::fprintf(stderr, "lowering failed: %s\n", lr.error.c_str());
    return 1;
  }
  NicProgram nic = CompileToNic(lr.module);
  const Function& f = lr.module.functions[0];
  for (size_t b = 0; b < nic.blocks.size(); ++b) {
    std::printf("^%s:  ; compute=%u api=%u mem_state=%u mem_pkt=%u lmem=%u\n",
                f.blocks[b].label.c_str(), nic.blocks[b].counts.compute,
                nic.blocks[b].counts.api_compute, nic.blocks[b].counts.mem_state,
                nic.blocks[b].counts.mem_packet, nic.blocks[b].counts.mem_lmem);
    for (const auto& instr : nic.blocks[b].instrs) {
      std::printf("    %s\n", ToString(instr, lr.module).c_str());
    }
  }
  NicBlockCounts t = nic.Totals();
  std::printf("; totals: %u compute + %u api-compute, %u state mem, %u pkt mem\n",
              t.compute, t.api_compute, t.mem_state, t.mem_packet);
  return 0;
}

void PrintRuleFirings(const RuleFirings& r) {
  std::printf("backend rewrite-rule firings (%u total):\n", r.Total());
  std::printf("  %-24s %6u    %-24s %6u\n", "mul->pow2 shift", r.mul_pow2_shifts,
              "mul expansion", r.mul_expansions);
  std::printf("  %-24s %6u    %-24s %6u\n", "div expansion", r.div_expansions,
              "cmp/branch fusion", r.cmp_branch_fusions);
  std::printf("  %-24s %6u    %-24s %6u\n", "cmp materialization", r.cmp_materializations,
              "immed materialization", r.immed_materializations);
  std::printf("  %-24s %6u    %-24s %6u\n", "zext elision", r.zext_elisions,
              "api expansion", r.api_expansions);
  std::printf("  %-24s %6u    %-24s %6u\n", "packet coalesce", r.packet_coalesces,
              "state coalesce", r.state_coalesces);
  std::printf("  %-24s %6u    %-24s %6u\n", "stack promotion", r.stack_promotions,
              "stack spill", r.stack_spills);
}

int CmdProfile(const std::string& name, const WorkloadSpec& workload) {
  CLARA_TRACE_SPAN("cli.pipeline", "cli");
  Program program = [&] {
    obs::StageTimer t("cli.parse", "cli.stage_ms.parse", "cli");
    return MakeElementByName(name);
  }();
  NfInstance nf = [&] {
    obs::StageTimer t("cli.lower", "cli.stage_ms.lower", "cli");
    return NfInstance(std::move(program));
  }();
  if (!nf.ok()) {
    std::fprintf(stderr, "error: %s\n", nf.error().c_str());
    return 1;
  }
  {
    obs::StageTimer t("cli.profile", "cli.stage_ms.profile", "cli");
    Trace trace = GenerateTrace(workload, 5000);
    for (auto& pkt : trace.packets) {
      pkt.in_port = pkt.src_ip & 1;
      nf.Process(pkt);
    }
  }
  const NfProfile& prof = nf.profile();
  std::printf("workload: %s (%u flows, %uB packets)\n", workload.name.c_str(),
              workload.num_flows, workload.pkt_size);
  std::printf("packets: %llu  sends: %llu  drops: %llu\n",
              static_cast<unsigned long long>(prof.packets),
              static_cast<unsigned long long>(prof.sends),
              static_cast<unsigned long long>(prof.drops));
  std::printf("\nstate accesses per packet:\n");
  for (size_t v = 0; v < nf.module().state.size(); ++v) {
    std::printf("  %-16s %8.3f reads  %8.3f writes  (%llu bytes)\n",
                nf.module().state[v].name.c_str(),
                static_cast<double>(prof.state_reads[v]) / prof.packets,
                static_cast<double>(prof.state_writes[v]) / prof.packets,
                static_cast<unsigned long long>(nf.module().state[v].SizeBytes()));
  }
  std::printf("\nframework API calls per packet:\n");
  for (const auto& [api, count] : prof.api_calls) {
    std::printf("  %-16s %8.3f\n", api.c_str(),
                static_cast<double>(count) / prof.packets);
  }

  // Demand + model estimate, so a profile --trace covers the whole pipeline.
  NicConfig cfg;
  NfDemand demand;
  NicProgram nic;
  {
    obs::StageTimer t("cli.demand", "cli.stage_ms.demand", "cli");
    nic = CompileToNic(nf.module());
    demand = BuildDemand(nf.module(), nic, prof, workload, cfg);
  }
  {
    obs::StageTimer t("cli.evaluate", "cli.stage_ms.evaluate", "cli");
    PerfModel model(cfg);
    int cores = model.OptimalCores(demand);
    PerfPoint p = model.Evaluate(demand, cores);
    std::printf("\nmodel estimate: %.2f Mpps / %.2f us at %d cores (bound by %s)\n",
                p.throughput_mpps, p.latency_us, cores, p.breakdown.bound_resource);
  }
  return 0;
}

AnalyzerOptions CliAnalyzerOptions() {
  AnalyzerOptions options;
  options.predictor.train_programs = 150;
  options.predictor.lstm.epochs = 10;
  options.scaleout.train_programs = 60;
  options.colocation.train_nfs = 24;
  options.colocation.train_groups = 60;
  options.algo_corpus_per_class = 25;
  return options;
}

ClaraAnalyzer TrainAnalyzer(AnalyzerOptions options = CliAnalyzerOptions()) {
  ClaraAnalyzer analyzer(std::move(options));
  std::printf("training Clara (one-time)...\n");
  std::vector<Program> corpus;
  for (const auto& info : ElementRegistry()) {
    corpus.push_back(info.make());
  }
  std::vector<const Program*> ptrs;
  for (const auto& p : corpus) {
    ptrs.push_back(&p);
  }
  analyzer.Train(ptrs);
  return analyzer;
}

bool LoadBundle(const std::string& model_dir, TrainedBundle* bundle) {
  std::string error;
  if (!serve::LoadBundleFile(serve::BundlePath(model_dir), bundle, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  return true;
}

// Much smaller training corpus for CI smoke tests: the bundle is lower
// quality but exercises the identical artifact/serving paths in seconds.
AnalyzerOptions FastAnalyzerOptions() {
  AnalyzerOptions options;
  options.predictor.train_programs = 24;
  options.predictor.lstm.epochs = 2;
  options.scaleout.train_programs = 16;
  options.colocation.train_nfs = 8;
  options.colocation.train_groups = 16;
  options.algo_corpus_per_class = 6;
  return options;
}

int CmdTrain(const std::string& model_dir, bool fast) {
  if (model_dir.empty()) {
    std::fprintf(stderr, "error: train requires --model-dir=DIR\n");
    return 2;
  }
  auto t0 = std::chrono::steady_clock::now();
  ClaraAnalyzer analyzer = TrainAnalyzer(fast ? FastAnalyzerOptions() : CliAnalyzerOptions());
  double train_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ::mkdir(model_dir.c_str(), 0755);  // fopen below reports any real failure
  std::string path = serve::BundlePath(model_dir);
  std::string error;
  if (!serve::SaveBundleFile(path, analyzer.ExportTrained(), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("trained in %.1fs; bundle saved to %s\n", train_s, path.c_str());
  std::printf("serve it:  clara_serve --model-dir=%s --pipe\n", model_dir.c_str());
  std::printf("reuse it:  clara_cli insights <element> --model-dir=%s\n", model_dir.c_str());
  return 0;
}

int CmdInsights(const std::string& name, const WorkloadSpec& workload,
                const std::string& model_dir) {
  if (!model_dir.empty()) {
    TrainedBundle bundle;
    if (!LoadBundle(model_dir, &bundle)) {
      return 1;
    }
    ClaraAnalyzer analyzer(CliAnalyzerOptions(), std::move(bundle));
    analyzer.SetInferBackend(g_infer);
    OffloadingInsights insights = analyzer.Analyze(MakeElementByName(name), workload);
    std::printf("%s", insights.ToString(analyzer.perf_model().config()).c_str());
    return 0;
  }
  ClaraAnalyzer analyzer = TrainAnalyzer();
  analyzer.SetInferBackend(g_infer);
  OffloadingInsights insights = analyzer.Analyze(MakeElementByName(name), workload);
  std::printf("%s", insights.ToString(analyzer.perf_model().config()).c_str());
  return 0;
}

bool KnownElement(const std::string& name) {
  for (const auto& info : ElementRegistry()) {
    if (info.name == name) {
      return true;
    }
  }
  return false;
}

// One NF's telemetry report: profile, compile, evaluate at the optimal core
// count, then print utilization + attribution + rule firings.
int ReportOne(const std::string& name, const WorkloadSpec& workload, const NicConfig& cfg) {
  CLARA_TRACE_SPAN("cli.report_nf", "cli");
  if (!KnownElement(name)) {
    // MakeElementByName aborts on unknown names; keep the report going
    // over the rest of the list instead.
    std::fprintf(stderr, "error: unknown element: %s (see `clara_cli list`)\n", name.c_str());
    return 1;
  }
  NfInstance nf = [&] {
    obs::StageTimer t("cli.lower", "cli.stage_ms.lower", "cli");
    return NfInstance(MakeElementByName(name));
  }();
  if (!nf.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", name.c_str(), nf.error().c_str());
    return 1;
  }
  {
    obs::StageTimer t("cli.profile", "cli.stage_ms.profile", "cli");
    Trace trace = GenerateTrace(workload, 4000);
    for (auto& pkt : trace.packets) {
      pkt.in_port = pkt.src_ip & 1;
      nf.Process(pkt);
    }
  }
  NicProgram nic;
  NfDemand demand;
  {
    obs::StageTimer t("cli.demand", "cli.stage_ms.demand", "cli");
    nic = CompileToNic(nf.module());
    demand = BuildDemand(nf.module(), nic, nf.profile(), workload, cfg);
  }
  PerfModel model(cfg);
  PerfPoint p;
  int cores = 0;
  {
    obs::StageTimer t("cli.evaluate", "cli.stage_ms.evaluate", "cli");
    cores = model.OptimalCores(demand);
    p = model.Evaluate(demand, cores);
  }

  std::printf("=== %s (%s workload) ===\n", name.c_str(), workload.name.c_str());
  std::printf("%llu packets profiled; %.3f state accesses/pkt; arithmetic intensity %.2f\n",
              static_cast<unsigned long long>(nf.profile().packets),
              demand.TotalStateAccesses(), demand.ArithmeticIntensity());
  std::printf("operating point: %.2f Mpps / %.2f us at %d cores\n", p.throughput_mpps,
              p.latency_us, cores);
  std::printf("bottleneck: %s (rho=%.2f)\n", p.breakdown.bound_resource,
              p.breakdown.bound_rho);
  std::printf("per-region utilization:\n");
  for (int r = 0; r < kNumMemRegions; ++r) {
    if (!p.breakdown.region_used[r]) {
      continue;
    }
    std::printf("  %-6s rho=%5.2f  eff-latency=%8.1f cyc\n",
                MemRegionName(static_cast<MemRegion>(r)), p.breakdown.region_rho[r],
                p.breakdown.region_latency_cycles[r]);
  }
  if (p.breakdown.cache_used) {
    std::printf("  %-6s rho=%5.2f  eff-latency=%8.1f cyc\n", "EMEM$", p.breakdown.cache_rho,
                p.breakdown.cache_latency_cycles);
  }
  if (p.breakdown.pkt_used) {
    std::printf("  %-6s rho=%5.2f  eff-latency=%8.1f cyc\n", "PKT", p.breakdown.pkt_rho,
                p.breakdown.pkt_latency_cycles);
  }
  std::printf("  %-6s rho=%5.2f  (compute %.1f cyc + mem wait %.1f cyc per pkt)\n", "cores",
              p.breakdown.core_rho, p.breakdown.compute_cycles, p.breakdown.mem_cycles);
  PrintRuleFirings(nic.rules);
  std::printf("\n");
  return 0;
}

// Runs the named elements through the serve engine (each twice, so the
// result cache gets both misses and hits) purely to populate the serve.*
// metrics that the report renders below.
int ReportServe(const std::vector<std::string>& names, const WorkloadSpec& workload,
                const std::string& model_dir) {
  TrainedBundle bundle;
  if (!LoadBundle(model_dir, &bundle)) {
    return 1;
  }
  serve::ServeOptions serve_opts;
  serve_opts.infer_backend = g_infer;
  serve::ServeEngine engine(std::move(bundle), serve_opts);
  engine.Start();
  uint64_t id = 0;
  std::vector<std::future<serve::InsightResponse>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const auto& name : names) {
      serve::InsightRequest req;
      req.id = ++id;
      req.element = ElementName(name);
      req.workload = workload;
      futures.push_back(engine.Submit(std::move(req)));
    }
  }
  int errors = 0;
  for (auto& f : futures) {
    serve::InsightResponse resp = f.get();
    if (resp.error != serve::ErrorCode::kOk) {
      std::fprintf(stderr, "serve error: %s: %s\n", serve::ErrorCodeName(resp.error),
                   resp.error_message.c_str());
      ++errors;
    }
  }
  engine.Stop();
  std::printf("=== serve (%zu requests, %zu cached results) ===\n", futures.size(),
              engine.cache_entries());
  // The same health document a live daemon serves for `clara_client health`.
  std::printf("health: %s\n", engine.HealthJson().c_str());
  return errors == 0 ? 0 : 1;
}

int CmdReport(std::vector<std::string> names, const WorkloadSpec& workload,
              const std::string& model_dir) {
  obs::SetEnabled(true);
  if (names.empty()) {
    for (const auto& info : ElementRegistry()) {
      names.push_back(info.name);
    }
  }
  NicConfig cfg;
  int rc = 0;
  for (const auto& name : names) {
    rc |= ReportOne(ElementName(name), workload, cfg);
  }
  if (!model_dir.empty()) {
    rc |= ReportServe(names, workload, model_dir);
  }
  std::printf("=== metrics registry ===\n%s",
              obs::MetricsRegistry::Global().Render().c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string jsonl_path;
  std::string metrics_path;
  std::string model_dir;
  bool fast = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--fast") {
      fast = true;
    } else if (a.rfind("--trace=", 0) == 0) {
      trace_path = a.substr(strlen("--trace="));
    } else if (a.rfind("--trace-jsonl=", 0) == 0) {
      jsonl_path = a.substr(strlen("--trace-jsonl="));
    } else if (a.rfind("--metrics-json=", 0) == 0) {
      metrics_path = a.substr(strlen("--metrics-json="));
    } else if (a.rfind("--model-dir=", 0) == 0) {
      model_dir = a.substr(strlen("--model-dir="));
    } else if (a.rfind("--threads=", 0) == 0) {
      clara::SetNumThreads(std::atoi(a.c_str() + strlen("--threads=")));
    } else if (a.rfind("--infer=", 0) == 0) {
      if (!ParseInferBackend(a.substr(strlen("--infer=")), &g_infer)) {
        std::fprintf(stderr, "unknown --infer backend: %s\n",
                     a.c_str() + strlen("--infer="));
        return Usage();
      }
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return Usage();
    } else {
      args.push_back(std::move(a));
    }
  }

  obs::TraceSink sink;
  bool tracing = !trace_path.empty() || !jsonl_path.empty();
  if (tracing || !metrics_path.empty()) {
    obs::SetEnabled(true);
  }
  if (tracing) {
    obs::SetGlobalTrace(&sink);
  }

  int rc = 2;
  if (args.empty()) {
    rc = Usage();
  } else {
    const std::string& cmd = args[0];
    if (cmd == "list") {
      rc = CmdList();
    } else if (cmd == "train") {
      rc = CmdTrain(model_dir, fast);
    } else if (cmd == "report") {
      rc = CmdReport(std::vector<std::string>(args.begin() + 1, args.end()),
                     WorkloadSpec::SmallFlows(), model_dir);
    } else if (args.size() < 2) {
      rc = Usage();
    } else {
      std::string element = ElementName(args[1]);
      if (cmd == "show") {
        rc = CmdShow(element);
      } else if (cmd == "ir") {
        rc = CmdIr(element);
      } else if (cmd == "asm") {
        rc = CmdAsm(element);
      } else if (cmd == "profile") {
        rc = CmdProfile(element, PickWorkload(args, 2));
      } else if (cmd == "insights") {
        rc = CmdInsights(element, PickWorkload(args, 2), model_dir);
      } else {
        rc = Usage();
      }
    }
  }

  obs::SetGlobalTrace(nullptr);
  if (!trace_path.empty() && !sink.WriteChromeJson(trace_path)) {
    std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  if (!jsonl_path.empty() && !sink.WriteJsonl(jsonl_path)) {
    std::fprintf(stderr, "failed to write trace JSONL to %s\n", jsonl_path.c_str());
    rc = rc == 0 ? 1 : rc;
  }
  if (!metrics_path.empty()) {
    FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f != nullptr) {
      std::string json = obs::MetricsRegistry::Global().ToJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n", metrics_path.c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
