// clara_loadgen — sustained multi-client load harness for clara_serve.
//
// Drives N concurrent Unix-socket connections against a daemon and measures
// the end-to-end serving path under real concurrency: each connection is a
// synthetic client with its own pacing clock, in-flight window and frame
// reassembly, so the daemon sees interleaved partial frames across many fds
// — exactly what the epoll transport exists for.
//
//   --mode=closed   each connection keeps exactly one request in flight
//                   (send, wait, repeat): measures service latency without
//                   queueing amplification.
//   --mode=open     requests are sent on a fixed schedule derived from
//                   --rate (total req/s across all connections) regardless
//                   of responses: measures behavior at a target load,
//                   including queueing, shedding and backpressure.
//
// Request mix knobs: --hit-ratio picks between the cache-hit class (one
// fixed workload per element, prewarmed, so responses replay byte-equal
// from the serve cache) and the miss class (a unique workload seed per
// request, forcing profiling + inference + analysis); --trace-pct attaches
// trace ids; --priority-hi-pct marks a fraction priority 1 (brownout
// shedding targets priority 0 first); --deadline-ms sets per-request
// deadlines.
//
// Correctness while under load: every OK response to a hit-class request is
// byte-compared (response body, the serve cache's unit) against a baseline —
// captured from --baseline-socket when given (e.g. a --transport=sequential
// daemon, proving the epoll loop byte-identical to the legacy transport),
// otherwise against the first answer this run observed per element. Any
// mismatch fails the run.
//
// The end-of-run JSON --report carries achieved req/s, p50/p90/p99/max
// latency, per-code error counts and verification results; --bench-json
// writes a bench_diff-comparable row (see bench/baselines/
// BENCH_serve_load.json) whose p99-vs-SLO ratio is clamped at 1.0 from
// below, so the committed baseline is machine-independent and the CI diff
// acts as a hard p99 SLO gate. Violating --slo-p99-us or --max-error-rate,
// any byte mismatch, or a failed connection makes the exit code nonzero.
//
// Usage:
//   clara_loadgen --socket=PATH --connections=128 --mode=open --rate=1500 \
//     --duration-s=10 --hit-ratio=0.995 --slo-p99-us=50000 \
//     --baseline-socket=SEQ_PATH --report=load.json --bench-json=BENCH.json
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/serve/proto.h"
#include "src/workload/workload.h"

namespace {

using namespace clara;
using Clock = std::chrono::steady_clock;

struct Config {
  std::string socket_path;
  std::string baseline_socket;
  std::string report_path;
  std::string bench_json_path;
  std::string mode = "closed";
  size_t connections = 128;
  double rate = 0;  // total req/s across connections (open mode)
  double duration_s = 10;
  double hit_ratio = 1.0;
  double trace_pct = 0;
  double priority_hi_pct = 0;
  uint32_t deadline_ms = 0;
  uint64_t seed = 1;
  double slo_p99_us = 0;       // 0 = no latency gate
  double max_error_rate = 0;   // allowed (errors+shed)/sent; 0 = none allowed
  size_t max_in_flight = 256;  // open-mode per-connection window cap
};

const char* kElements[] = {"aggcounter", "heavyhitter", "udpcount", "iplookup"};
constexpr size_t kElementCount = sizeof(kElements) / sizeof(kElements[0]);

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double UnitFloat(uint64_t x) {
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

bool TryConnect(const std::string& path, int* out_fd) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  *out_fd = fd;
  return true;
}

// One blocking request/response exchange on a throwaway connection.
bool Exchange(const std::string& path, const std::string& out, std::string* reply) {
  int fd;
  if (!TryConnect(path, &fd)) {
    return false;
  }
  size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    reply->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return true;
}

// The fixed hit-class workload: identical on every run and both daemons, so
// responses come from the serve cache byte-equal.
WorkloadSpec HitWorkload() { return WorkloadSpec::SmallFlows(); }

serve::InsightRequest MakeRequest(const Config& cfg, uint64_t id, size_t conn,
                                  uint64_t seq, bool* is_hit, size_t* element_idx) {
  serve::InsightRequest req;
  req.id = id;
  uint64_t draw = SplitMix64(cfg.seed ^ (static_cast<uint64_t>(conn) << 40) ^ seq);
  *element_idx = seq % kElementCount;
  req.element = kElements[*element_idx];
  *is_hit = UnitFloat(draw) < cfg.hit_ratio;
  req.workload = HitWorkload();
  if (!*is_hit) {
    // A unique workload seed per miss forces a fresh (program, workload)
    // cache key: full profiling + inference + analysis on the daemon.
    req.workload.seed = SplitMix64(draw ^ 0xC0FFEEull);
  }
  if (cfg.trace_pct > 0 && UnitFloat(SplitMix64(draw ^ 1)) < cfg.trace_pct / 100.0) {
    req.trace_id = id;
  }
  if (cfg.priority_hi_pct > 0 &&
      UnitFloat(SplitMix64(draw ^ 2)) < cfg.priority_hi_pct / 100.0) {
    req.priority = 1;
  }
  req.deadline_ms = cfg.deadline_ms;
  return req;
}

// Baseline for the byte-compare: one fixed-workload request per element
// against `path` (also prewarms that daemon's cache).
bool CaptureBaseline(const std::string& path,
                     std::map<std::string, std::string>* baseline) {
  std::string out;
  for (size_t i = 0; i < kElementCount; ++i) {
    serve::InsightRequest req;
    req.id = i + 1;
    req.element = kElements[i];
    req.workload = HitWorkload();
    serve::AppendFrame(&out, serve::EncodeRequest(req));
  }
  std::string reply;
  if (!Exchange(path, out, &reply)) {
    return false;
  }
  serve::FrameReader reader;
  reader.Feed(reply.data(), reply.size());
  std::string frame;
  while (reader.Next(&frame)) {
    serve::InsightResponse resp;
    std::string err;
    if (serve::ParseResponse(frame, &resp, &err) &&
        resp.error == serve::ErrorCode::kOk && resp.id >= 1 &&
        resp.id <= kElementCount) {
      (*baseline)[kElements[resp.id - 1]] = serve::EncodeResponseBody(resp);
    }
  }
  return baseline->size() == kElementCount;
}

struct ConnResult {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;       // structured non-OK, non-shed responses
  uint64_t torn = 0;         // frames that failed to parse
  uint64_t unanswered = 0;   // in flight when the drain window closed
  uint64_t skipped = 0;      // open mode: sends suppressed by the window cap
  bool conn_failed = false;
  std::vector<uint32_t> lat_us;
  std::map<int, uint64_t> error_codes;
};

struct Verifier {
  std::mutex mu;
  std::map<std::string, std::string> baseline;  // element -> expected body
  bool self_learn = false;  // no --baseline-socket: learn from first answers
  uint64_t mismatches = 0;
  std::string first_mismatch;

  // Returns false on a byte mismatch for a hit-class OK response.
  bool Check(const std::string& element, const serve::InsightResponse& resp) {
    std::string body = serve::EncodeResponseBody(resp);
    std::lock_guard<std::mutex> lock(mu);
    auto it = baseline.find(element);
    if (it == baseline.end()) {
      if (self_learn) {
        baseline[element] = std::move(body);
      }
      return true;
    }
    if (it->second == body) {
      return true;
    }
    ++mismatches;
    if (first_mismatch.empty()) {
      first_mismatch = "element '" + element + "' response bytes diverged";
    }
    return false;
  }
};

struct PendingReq {
  Clock::time_point sent_at;
  bool is_hit = false;
  size_t element_idx = 0;
};

// Writes all of `data` to a non-blocking fd, polling on EAGAIN. The frames
// are tiny relative to the socket buffer, so this only stalls when the
// daemon is applying real backpressure.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      struct pollfd p = {fd, POLLOUT, 0};
      ::poll(&p, 1, 1000);
      continue;
    }
    return false;
  }
  return true;
}

void RunConnection(const Config& cfg, size_t conn_idx, Clock::time_point start,
                   Verifier* verifier, ConnResult* result) {
  int fd;
  if (!TryConnect(cfg.socket_path, &fd)) {
    result->conn_failed = true;
    return;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  const bool open_loop = cfg.mode == "open";
  const auto duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(cfg.duration_s));
  const Clock::time_point end = start + duration;
  const Clock::time_point drain_end = end + std::chrono::seconds(5);
  // Open mode: this connection sends every `interval`, phase-staggered so
  // the aggregate hits --rate without a thundering herd at t=0.
  Clock::duration interval = Clock::duration::zero();
  Clock::time_point next_send = start;
  if (open_loop) {
    double per_conn = cfg.rate / static_cast<double>(cfg.connections);
    interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / per_conn));
    next_send = start + (interval * static_cast<int>(conn_idx)) /
                            static_cast<int>(cfg.connections);
  }

  serve::FrameReader reader;
  std::unordered_map<uint64_t, PendingReq> in_flight;
  uint64_t seq = 0;
  char buf[1 << 16];

  auto send_one = [&]() -> bool {
    bool is_hit = false;
    size_t element_idx = 0;
    uint64_t id = (static_cast<uint64_t>(conn_idx + 1) << 32) | ++seq;
    serve::InsightRequest req =
        MakeRequest(cfg, id, conn_idx, seq, &is_hit, &element_idx);
    std::string out;
    serve::AppendFrame(&out, serve::EncodeRequest(req));
    PendingReq p;
    p.sent_at = Clock::now();
    p.is_hit = is_hit;
    p.element_idx = element_idx;
    if (!SendAll(fd, out)) {
      result->conn_failed = true;
      return false;
    }
    in_flight.emplace(id, p);
    ++result->sent;
    return true;
  };

  for (;;) {
    Clock::time_point now = Clock::now();
    if (result->conn_failed || now >= drain_end ||
        (now >= end && in_flight.empty())) {
      break;
    }
    if (now < end) {
      if (open_loop) {
        while (next_send <= now) {
          if (in_flight.size() >= cfg.max_in_flight) {
            ++result->skipped;  // window cap: the daemon is far behind
            next_send += interval;
            continue;
          }
          if (!send_one()) {
            break;
          }
          next_send += interval;
        }
      } else if (in_flight.empty()) {
        if (!send_one()) {
          break;
        }
      }
    }
    if (result->conn_failed) {
      break;
    }

    Clock::time_point wake = now >= end ? drain_end : end;
    if (open_loop && now < end && next_send < wake) {
      wake = next_send;
    }
    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(wake - now).count());
    timeout_ms = std::max(0, std::min(timeout_ms, 100));
    struct pollfd p = {fd, POLLIN, 0};
    int pr = ::poll(&p, 1, timeout_ms);
    if (pr < 0 && errno != EINTR) {
      result->conn_failed = true;
      break;
    }
    if (pr <= 0 || (p.revents & (POLLIN | POLLHUP)) == 0) {
      continue;
    }
    bool peer_closed = false;
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        reader.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        peer_closed = true;
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      result->conn_failed = true;
      break;
    }
    std::string frame;
    while (reader.Next(&frame)) {
      serve::InsightResponse resp;
      std::string err;
      if (!serve::ParseResponse(frame, &resp, &err)) {
        ++result->torn;
        continue;
      }
      auto it = in_flight.find(resp.id);
      if (it == in_flight.end()) {
        ++result->torn;
        continue;
      }
      uint32_t lat = static_cast<uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                it->second.sent_at)
              .count());
      if (resp.error == serve::ErrorCode::kOk) {
        ++result->ok;
        result->lat_us.push_back(lat);
        if (it->second.is_hit) {
          verifier->Check(kElements[it->second.element_idx], resp);
        }
      } else if (resp.error == serve::ErrorCode::kShedded) {
        ++result->shed;
      } else {
        ++result->errors;
        ++result->error_codes[static_cast<int>(resp.error)];
      }
      in_flight.erase(it);
    }
    reader.TakeOversized();
    if (peer_closed) {
      // Disconnected (e.g. slow-client backpressure): anything still in
      // flight is lost.
      result->conn_failed = !in_flight.empty() || result->sent == 0;
      break;
    }
  }
  result->unanswered += in_flight.size();
  ::close(fd);
}

uint32_t Percentile(std::vector<uint32_t>& sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

double Clamp(double v, double lo, double hi) { return std::max(lo, std::min(v, hi)); }

int Usage() {
  std::fprintf(
      stderr,
      "usage: clara_loadgen --socket=PATH [--connections=N] [--mode=open|closed]\n"
      "                     [--rate=REQ_PER_S] [--duration-s=S] [--hit-ratio=X]\n"
      "                     [--trace-pct=X] [--priority-hi-pct=X] [--deadline-ms=N]\n"
      "                     [--seed=N] [--slo-p99-us=X] [--max-error-rate=X]\n"
      "                     [--baseline-socket=PATH] [--report=FILE]\n"
      "                     [--bench-json=FILE]\n"
      "Sustained multi-client load against a clara_serve --socket daemon; the\n"
      "exit code gates p99 latency, error rate and byte-identity of cached\n"
      "responses (vs --baseline-socket when given).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto val = [&a](const char* flag) { return a.c_str() + std::strlen(flag); };
    if (a.rfind("--socket=", 0) == 0) {
      cfg.socket_path = val("--socket=");
    } else if (a.rfind("--baseline-socket=", 0) == 0) {
      cfg.baseline_socket = val("--baseline-socket=");
    } else if (a.rfind("--report=", 0) == 0) {
      cfg.report_path = val("--report=");
    } else if (a.rfind("--bench-json=", 0) == 0) {
      cfg.bench_json_path = val("--bench-json=");
    } else if (a.rfind("--mode=", 0) == 0) {
      cfg.mode = val("--mode=");
    } else if (a.rfind("--connections=", 0) == 0) {
      cfg.connections = std::strtoul(val("--connections="), nullptr, 10);
    } else if (a.rfind("--rate=", 0) == 0) {
      cfg.rate = std::strtod(val("--rate="), nullptr);
    } else if (a.rfind("--duration-s=", 0) == 0) {
      cfg.duration_s = std::strtod(val("--duration-s="), nullptr);
    } else if (a.rfind("--hit-ratio=", 0) == 0) {
      cfg.hit_ratio = std::strtod(val("--hit-ratio="), nullptr);
    } else if (a.rfind("--trace-pct=", 0) == 0) {
      cfg.trace_pct = std::strtod(val("--trace-pct="), nullptr);
    } else if (a.rfind("--priority-hi-pct=", 0) == 0) {
      cfg.priority_hi_pct = std::strtod(val("--priority-hi-pct="), nullptr);
    } else if (a.rfind("--deadline-ms=", 0) == 0) {
      cfg.deadline_ms =
          static_cast<uint32_t>(std::strtoul(val("--deadline-ms="), nullptr, 10));
    } else if (a.rfind("--seed=", 0) == 0) {
      cfg.seed = std::strtoull(val("--seed="), nullptr, 10);
    } else if (a.rfind("--slo-p99-us=", 0) == 0) {
      cfg.slo_p99_us = std::strtod(val("--slo-p99-us="), nullptr);
    } else if (a.rfind("--max-error-rate=", 0) == 0) {
      cfg.max_error_rate = std::strtod(val("--max-error-rate="), nullptr);
    } else {
      return Usage();
    }
  }
  if (cfg.socket_path.empty() || cfg.connections == 0 || cfg.duration_s <= 0 ||
      (cfg.mode != "open" && cfg.mode != "closed") ||
      (cfg.mode == "open" && cfg.rate <= 0) || cfg.hit_ratio < 0 ||
      cfg.hit_ratio > 1) {
    return Usage();
  }
  ::signal(SIGPIPE, SIG_IGN);

  Verifier verifier;
  if (!cfg.baseline_socket.empty()) {
    if (!CaptureBaseline(cfg.baseline_socket, &verifier.baseline)) {
      std::fprintf(stderr, "clara_loadgen: cannot capture baseline from %s\n",
                   cfg.baseline_socket.c_str());
      return 1;
    }
    std::fprintf(stderr, "clara_loadgen: baseline captured (%zu elements)\n",
                 verifier.baseline.size());
  } else {
    verifier.self_learn = true;
  }
  // Prewarm the target daemon's cache so hit-class requests actually hit
  // from the first timed sample.
  {
    std::map<std::string, std::string> warm;
    if (!CaptureBaseline(cfg.socket_path, &warm)) {
      std::fprintf(stderr, "clara_loadgen: cannot reach %s\n",
                   cfg.socket_path.c_str());
      return 1;
    }
  }

  std::vector<ConnResult> results(cfg.connections);
  std::vector<std::thread> threads;
  threads.reserve(cfg.connections);
  Clock::time_point start = Clock::now() + std::chrono::milliseconds(50);
  for (size_t c = 0; c < cfg.connections; ++c) {
    threads.emplace_back(RunConnection, std::cref(cfg), c, start, &verifier,
                         &results[c]);
  }
  for (auto& t : threads) {
    t.join();
  }

  ConnResult total;
  std::vector<uint32_t> lat;
  size_t failed_conns = 0;
  for (const auto& r : results) {
    total.sent += r.sent;
    total.ok += r.ok;
    total.shed += r.shed;
    total.errors += r.errors;
    total.torn += r.torn;
    total.unanswered += r.unanswered;
    total.skipped += r.skipped;
    failed_conns += r.conn_failed ? 1 : 0;
    lat.insert(lat.end(), r.lat_us.begin(), r.lat_us.end());
    for (const auto& [code, n] : r.error_codes) {
      total.error_codes[code] += n;
    }
  }
  std::sort(lat.begin(), lat.end());
  uint32_t p50 = Percentile(lat, 0.50);
  uint32_t p90 = Percentile(lat, 0.90);
  uint32_t p99 = Percentile(lat, 0.99);
  uint32_t lat_max = lat.empty() ? 0 : lat.back();
  uint64_t completed = total.ok + total.shed + total.errors;
  double achieved_rps = static_cast<double>(completed) / cfg.duration_s;
  double error_rate =
      total.sent == 0
          ? 1.0
          : static_cast<double>(total.errors + total.torn + total.unanswered) /
                static_cast<double>(total.sent);

  bool slo_ok = cfg.slo_p99_us <= 0 || static_cast<double>(p99) <= cfg.slo_p99_us;
  bool errors_ok = error_rate <= cfg.max_error_rate;
  bool verify_ok = verifier.mismatches == 0;
  bool conns_ok = failed_conns == 0;

  std::string error_codes_json = "{";
  bool first = true;
  for (const auto& [code, n] : total.error_codes) {
    if (!first) {
      error_codes_json += ",";
    }
    first = false;
    error_codes_json +=
        "\"" +
        std::string(serve::ErrorCodeName(static_cast<serve::ErrorCode>(code))) +
        "\":" + std::to_string(n);
  }
  error_codes_json += "}";

  char report[2048];
  std::snprintf(
      report, sizeof(report),
      "{\n"
      "  \"mode\": \"%s\",\n"
      "  \"connections\": %zu,\n"
      "  \"target_rps\": %.1f,\n"
      "  \"duration_s\": %.2f,\n"
      "  \"hit_ratio\": %.4f,\n"
      "  \"sent\": %llu,\n"
      "  \"ok\": %llu,\n"
      "  \"shed\": %llu,\n"
      "  \"errors\": %llu,\n"
      "  \"torn\": %llu,\n"
      "  \"unanswered\": %llu,\n"
      "  \"skipped\": %llu,\n"
      "  \"failed_connections\": %zu,\n"
      "  \"achieved_rps\": %.1f,\n"
      "  \"latency_us\": {\"p50\": %u, \"p90\": %u, \"p99\": %u, \"max\": %u},\n"
      "  \"error_codes\": %s,\n"
      "  \"verify\": {\"baseline\": \"%s\", \"mismatches\": %llu},\n"
      "  \"gates\": {\"slo_p99_us\": %.0f, \"slo_ok\": %s, \"errors_ok\": %s, "
      "\"verify_ok\": %s, \"connections_ok\": %s}\n"
      "}\n",
      cfg.mode.c_str(), cfg.connections, cfg.rate, cfg.duration_s, cfg.hit_ratio,
      static_cast<unsigned long long>(total.sent),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.shed),
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.torn),
      static_cast<unsigned long long>(total.unanswered),
      static_cast<unsigned long long>(total.skipped), failed_conns, achieved_rps,
      p50, p90, p99, lat_max, error_codes_json.c_str(),
      cfg.baseline_socket.empty() ? "self" : "sequential-daemon",
      static_cast<unsigned long long>(verifier.mismatches), cfg.slo_p99_us,
      slo_ok ? "true" : "false", errors_ok ? "true" : "false",
      verify_ok ? "true" : "false", conns_ok ? "true" : "false");
  std::fputs(report, stderr);
  if (!cfg.report_path.empty()) {
    std::FILE* f = std::fopen(cfg.report_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "clara_loadgen: cannot write %s\n",
                   cfg.report_path.c_str());
      return 1;
    }
    std::fputs(report, f);
    std::fclose(f);
  }

  if (!cfg.bench_json_path.empty()) {
    // Machine-independent rows for tools/bench_diff.py: the p99 ratio is
    // clamped to 1.0 from below (any machine meeting the SLO produces the
    // baseline value exactly), so a diff > threshold means the SLO is
    // genuinely blown, and the completion fraction regresses when the
    // daemon stops keeping up with the offered load.
    double slo = cfg.slo_p99_us > 0 ? cfg.slo_p99_us : 1;
    double p99_ratio = Clamp(static_cast<double>(p99) / slo, 1.0, 3.0);
    double target = cfg.mode == "open"
                        ? cfg.rate * cfg.duration_s
                        : static_cast<double>(total.sent);
    double completion =
        target <= 0 ? 0 : Clamp(static_cast<double>(completed) / target, 0.0, 1.0);
    std::FILE* f = std::fopen(cfg.bench_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "clara_loadgen: cannot write %s\n",
                   cfg.bench_json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "[\n"
                 "  {\"phase\": \"sustained_load\", \"mode\": \"%s\", "
                 "\"p99_slo_latency_ratio\": %.4f, "
                 "\"completed_fraction_of_target\": %.4f}\n"
                 "]\n",
                 cfg.mode.c_str(), p99_ratio, completion);
    std::fclose(f);
  }

  if (!verify_ok) {
    std::fprintf(stderr, "clara_loadgen: FAIL: %s\n",
                 verifier.first_mismatch.c_str());
  }
  if (!conns_ok) {
    std::fprintf(stderr, "clara_loadgen: FAIL: %zu connection(s) failed\n",
                 failed_conns);
  }
  if (!slo_ok) {
    std::fprintf(stderr, "clara_loadgen: FAIL: p99 %u us exceeds SLO %.0f us\n", p99,
                 cfg.slo_p99_us);
  }
  if (!errors_ok) {
    std::fprintf(stderr, "clara_loadgen: FAIL: error rate %.4f exceeds %.4f\n",
                 error_rate, cfg.max_error_rate);
  }
  return (slo_ok && errors_ok && verify_ok && conns_ok) ? 0 : 1;
}
