// Differential compiler fuzzer for the Clara NIC toolchain.
//
// Synthesizes random NF programs (src/synth), runs each over a generated
// packet trace (src/workload) through three independent executors — the AST
// interpreter, the IR reference interpreter, and the compiled-ISA executor
// (src/nic/exec.h) — and cross-checks per-packet outputs and final state
// via RunDifferential (src/nic/diff.h).
//
// On a mismatch the failing case is shrunk with delta debugging (first over
// the packet subset, then over the program's statements) and written to a
// corpus directory as a replayable .case file. CI replays the committed
// corpus (tests/corpus) on every run, so once-broken cases stay fixed.
//
// A second mode fuzzes the serving subsystem's parsers: --serve-fuzz mutates
// valid wire-protocol payloads (requests, responses), model-bundle artifacts,
// and framed byte streams, then checks that every parser either rejects the
// bytes with an error or accepts them canonically (accepted bytes must
// re-encode to a stable fixed point) — and never crashes. Violations are
// written as kind=serve .case files replayable with --replay.
//
// Usage:
//   clara_fuzz [--iters=N] [--seed=S] [--pkts=M]
//              [--corpus-out=DIR]      write shrunk failures here
//              [--replay=FILE|DIR]     replay .case file(s) instead of fuzzing
//              [--serve-fuzz]          fuzz wire/artifact parsers instead
//
// CLARA_FUZZ_ITERS overrides the default iteration count (the nightly CI
// job raises it without touching ctest definitions). Exit code is nonzero
// iff any mismatch was observed.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/analyzer.h"
#include "src/lang/ast.h"
#include "src/lang/interp.h"
#include "src/lang/printer.h"
#include "src/ir/printer.h"
#include "src/nic/diff.h"
#include "src/serve/artifact.h"
#include "src/serve/proto.h"
#include "src/synth/synth.h"
#include "src/util/binio.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

namespace clara {
namespace {

// Everything needed to regenerate one fuzz case deterministically.
struct FuzzCase {
  // kind "diff" (default): differential executor case regenerated from the
  // synthesis seeds below. kind "serve": raw bytes for a serving-layer
  // parser, stored directly in `hex`.
  std::string kind = "diff";
  uint64_t seed = 1;       // synthesis RNG seed
  int index = 0;           // synthesis program index
  std::string profile = "default";  // default | uniform | generic
  uint64_t wl_seed = 42;   // workload RNG seed
  uint32_t wl_flows = 16;  // concurrent flows in the trace
  uint32_t wl_pkts = 32;   // trace length
  std::vector<uint32_t> pkts;  // kept trace indices (empty = all)
  std::vector<int> keep;       // kept pre-order statement indices (empty = all)
  bool has_keep = false;
  std::string target;  // serve cases: request | response | artifact | frame
  std::string hex;     // serve cases: the input bytes, hex-encoded
  std::string note;
};

SynthOptions OptionsFor(const std::string& profile) {
  SynthOptions opts;
  if (profile == "uniform") {
    opts.profile = UniformProfile();
  } else if (profile == "generic") {
    opts.profile = GenericProfile();
  } else {
    opts.profile = SynthProfile{};
  }
  return opts;
}

// ---- statement pruning (pre-order keep-index semantics) ----

int CountStmts(const std::vector<StmtPtr>& body) {
  int n = 0;
  for (const auto& s : body) {
    n += 1 + CountStmts(s->body) + CountStmts(s->else_body);
  }
  return n;
}

// Emits clones of the statements whose pre-order index is in `keep` (children
// of dropped statements are dropped with them; `idx` still advances through
// the whole tree so indices are stable under any keep-set).
void FilterBody(const std::vector<StmtPtr>& in, std::vector<StmtPtr>* out,
                int* idx, const std::set<int>& keep) {
  for (const auto& s : in) {
    int my = (*idx)++;
    std::vector<StmtPtr> body, else_body;
    FilterBody(s->body, &body, idx, keep);
    FilterBody(s->else_body, &else_body, idx, keep);
    if (keep.count(my) == 0) {
      continue;
    }
    StmtPtr c = CloneStmt(*s);
    c->body = std::move(body);
    c->else_body = std::move(else_body);
    out->push_back(std::move(c));
  }
}

Program PruneProgram(const Program& p, const std::set<int>& keep) {
  Program out;
  out.name = p.name;
  for (const auto& d : p.state) {
    out.state.push_back(d);
  }
  int idx = 0;
  FilterBody(p.body, &out.body, &idx, keep);
  return out;
}

// ---- case regeneration ----

Program GenProgram(const FuzzCase& c) {
  Rng rng(c.seed);
  Program p = SynthesizeProgram(rng, OptionsFor(c.profile), c.index);
  if (c.has_keep) {
    std::set<int> keep(c.keep.begin(), c.keep.end());
    p = PruneProgram(p, keep);
  }
  return p;
}

std::vector<Packet> GenPackets(const FuzzCase& c) {
  WorkloadSpec spec;
  spec.seed = c.wl_seed;
  spec.num_flows = c.wl_flows == 0 ? 1 : c.wl_flows;
  Trace tr = GenerateTrace(spec, c.wl_pkts);
  if (c.pkts.empty()) {
    return tr.packets;
  }
  std::vector<Packet> out;
  for (uint32_t i : c.pkts) {
    if (i < tr.packets.size()) {
      out.push_back(tr.packets[i]);
    }
  }
  return out;
}

// A case "fails" if the differential run diverges (setup failures are not
// interesting shrink targets: the shrunk program must still lower).
bool CaseFails(const Program& p, const std::vector<Packet>& pkts) {
  DiffResult r = RunDifferential(p, pkts);
  return !r.ok && !r.setup_failed;
}

// ---- delta debugging ----

// Classic ddmin over the kept-packet index list.
std::vector<uint32_t> DdminPackets(const Program& p, const std::vector<Packet>& trace,
                                   std::vector<uint32_t> indices) {
  auto subset_fails = [&](const std::vector<uint32_t>& idxs) {
    std::vector<Packet> pkts;
    for (uint32_t i : idxs) {
      pkts.push_back(trace[i]);
    }
    return CaseFails(p, pkts);
  };
  size_t n = 2;
  while (indices.size() >= 2) {
    size_t chunk = (indices.size() + n - 1) / n;
    bool reduced = false;
    for (size_t start = 0; start < indices.size(); start += chunk) {
      // Complement of [start, start+chunk).
      std::vector<uint32_t> rest;
      for (size_t i = 0; i < indices.size(); ++i) {
        if (i < start || i >= start + chunk) {
          rest.push_back(indices[i]);
        }
      }
      if (!rest.empty() && subset_fails(rest)) {
        indices = rest;
        n = n > 2 ? n - 1 : 2;
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= indices.size()) {
        break;
      }
      n = std::min(indices.size(), n * 2);
    }
  }
  return indices;
}

// Greedy statement pruning to a 1-minimal keep-set: repeatedly try dropping
// each kept statement (subtrees go with their parent) while the case still
// fails and still lowers.
std::set<int> MinimizeStmts(const Program& p, const std::vector<Packet>& pkts) {
  int total = CountStmts(p.body);
  std::set<int> keep;
  for (int i = 0; i < total; ++i) {
    keep.insert(i);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = total - 1; i >= 0; --i) {
      if (keep.count(i) == 0) {
        continue;
      }
      std::set<int> cand = keep;
      cand.erase(i);
      if (CaseFails(PruneProgram(p, cand), pkts)) {
        keep = std::move(cand);
        changed = true;
      }
    }
  }
  return keep;
}

// ---- case file I/O ----

std::string JoinU32(const std::vector<uint32_t>& v) {
  std::ostringstream oss;
  for (size_t i = 0; i < v.size(); ++i) {
    oss << (i ? "," : "") << v[i];
  }
  return oss.str();
}

std::string JoinInt(const std::vector<int>& v) {
  std::ostringstream oss;
  for (size_t i = 0; i < v.size(); ++i) {
    oss << (i ? "," : "") << v[i];
  }
  return oss.str();
}

std::string HexEncode(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

bool HexDecode(const std::string& hex, std::string* bytes) {
  if (hex.size() % 2 != 0) {
    return false;
  }
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  bytes->clear();
  bytes->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nib(hex[i]), lo = nib(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    bytes->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

bool WriteCaseFile(const FuzzCase& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "# clara_fuzz regression case (replay: clara_fuzz --replay=<this file>)\n";
  if (c.kind == "serve") {
    out << "kind=serve\n";
    out << "target=" << c.target << "\n";
    out << "hex=" << c.hex << "\n";
    if (!c.note.empty()) {
      out << "note=" << c.note << "\n";
    }
    return true;
  }
  out << "seed=" << c.seed << "\n";
  out << "index=" << c.index << "\n";
  out << "profile=" << c.profile << "\n";
  out << "wl_seed=" << c.wl_seed << "\n";
  out << "wl_flows=" << c.wl_flows << "\n";
  out << "wl_pkts=" << c.wl_pkts << "\n";
  if (!c.pkts.empty()) {
    out << "pkts=" << JoinU32(c.pkts) << "\n";
  }
  if (c.has_keep) {
    out << "keep=" << JoinInt(c.keep) << "\n";
  }
  if (!c.note.empty()) {
    out << "note=" << c.note << "\n";
  }
  return true;
}

bool ParseCaseFile(const std::string& path, FuzzCase* c) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "clara_fuzz: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    std::string key = line.substr(0, eq);
    std::string val = line.substr(eq + 1);
    auto parse_list_u32 = [](const std::string& s) {
      std::vector<uint32_t> v;
      std::stringstream ss(s);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) {
          v.push_back(static_cast<uint32_t>(std::stoul(tok)));
        }
      }
      return v;
    };
    if (key == "kind") {
      c->kind = val;
    } else if (key == "target") {
      c->target = val;
    } else if (key == "hex") {
      c->hex = val;
    } else if (key == "seed") {
      c->seed = std::stoull(val);
    } else if (key == "index") {
      c->index = std::stoi(val);
    } else if (key == "profile") {
      c->profile = val;
    } else if (key == "wl_seed") {
      c->wl_seed = std::stoull(val);
    } else if (key == "wl_flows") {
      c->wl_flows = static_cast<uint32_t>(std::stoul(val));
    } else if (key == "wl_pkts") {
      c->wl_pkts = static_cast<uint32_t>(std::stoul(val));
    } else if (key == "pkts") {
      c->pkts = parse_list_u32(val);
    } else if (key == "keep") {
      c->has_keep = true;
      for (uint32_t k : parse_list_u32(val)) {
        c->keep.push_back(static_cast<int>(k));
      }
    } else if (key == "note") {
      c->note = val;
    }
  }
  return true;
}

// ---- serve-layer parser fuzzing ----

// Parsers for untrusted bytes must either reject with an error or accept
// canonically: accepted bytes re-encode to a stable fixed point. (Crashes
// and hangs fail the process itself.)
bool CheckServeBytes(const std::string& target, const std::string& bytes,
                     std::string* why) {
  std::string err;
  if (target == "request") {
    serve::InsightRequest req;
    if (!serve::ParseRequest(bytes, &req, &err)) {
      return true;  // graceful rejection
    }
    std::string e1 = serve::EncodeRequest(req);
    serve::InsightRequest r2;
    if (!serve::ParseRequest(e1, &r2, &err)) {
      *why = "accepted request failed to re-parse: " + err;
      return false;
    }
    if (serve::EncodeRequest(r2) != e1) {
      *why = "request re-encoding is not a fixed point";
      return false;
    }
    return true;
  }
  if (target == "response") {
    serve::InsightResponse resp;
    if (!serve::ParseResponse(bytes, &resp, &err)) {
      return true;
    }
    std::string e1 = serve::EncodeResponse(resp);
    serve::InsightResponse r2;
    if (!serve::ParseResponse(e1, &r2, &err)) {
      *why = "accepted response failed to re-parse: " + err;
      return false;
    }
    if (serve::EncodeResponse(r2) != e1) {
      *why = "response re-encoding is not a fixed point";
      return false;
    }
    return true;
  }
  if (target == "artifact") {
    TrainedBundle bundle;
    if (!serve::DeserializeBundle(bytes, &bundle, &err)) {
      return true;
    }
    std::string e1 = serve::SerializeBundle(bundle);
    TrainedBundle b2;
    if (!serve::DeserializeBundle(e1, &b2, &err)) {
      *why = "accepted bundle failed to round-trip: " + err;
      return false;
    }
    return true;
  }
  if (target == "control") {
    serve::ControlRequest creq;
    if (serve::ParseControlRequest(bytes, &creq, &err)) {
      std::string e1 = serve::EncodeControlRequest(creq);
      serve::ControlRequest c2;
      if (!serve::ParseControlRequest(e1, &c2, &err)) {
        *why = "accepted control request failed to re-parse: " + err;
        return false;
      }
      if (serve::EncodeControlRequest(c2) != e1) {
        *why = "control request re-encoding is not a fixed point";
        return false;
      }
      return true;
    }
    serve::ControlResponse cresp;
    if (!serve::ParseControlResponse(bytes, &cresp, &err)) {
      return true;  // neither message; graceful rejection
    }
    std::string e1 = serve::EncodeControlResponse(cresp);
    serve::ControlResponse c2;
    if (!serve::ParseControlResponse(e1, &c2, &err)) {
      *why = "accepted control response failed to re-parse: " + err;
      return false;
    }
    if (serve::EncodeControlResponse(c2) != e1) {
      *why = "control response re-encoding is not a fixed point";
      return false;
    }
    return true;
  }
  if (target == "frame") {
    // Feed in deterministic uneven chunks; every yielded frame must respect
    // the size cap and total consumption must terminate.
    serve::FrameReader reader;
    Rng chunks(Fnv1a64(bytes) | 1);
    size_t off = 0;
    std::string frame;
    size_t frames = 0;
    while (off < bytes.size()) {
      size_t n = std::min<size_t>(bytes.size() - off,
                                  1 + chunks.NextBounded(4096));
      reader.Feed(bytes.data() + off, n);
      off += n;
      while (reader.Next(&frame)) {
        ++frames;
        if (frame.size() > serve::kMaxFrameBytes) {
          *why = "frame reader yielded an oversized frame";
          return false;
        }
      }
    }
    reader.TakeOversized();
    (void)frames;
    return true;
  }
  *why = "unknown serve target: " + target;
  return false;
}

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string s(rng.NextBounded(max_len + 1), '\0');
  for (char& c : s) {
    c = static_cast<char>(rng.NextU64() & 0xff);
  }
  return s;
}

// One valid base input per target, then mutated below.
std::string BaseServeBytes(Rng& rng, const std::string& target,
                           const std::string& artifact_bytes) {
  if (target == "request") {
    serve::InsightRequest req;
    req.id = rng.NextU64();
    req.element = RandomBytes(rng, 24);
    req.source = RandomBytes(rng, 120);
    req.workload.num_flows = static_cast<uint32_t>(rng.NextU64());
    req.workload.zipf_s = rng.NextDouble();
    req.workload.seed = rng.NextU64();
    req.deadline_ms = static_cast<uint32_t>(rng.NextBounded(5000));
    if (rng.NextBounded(2) == 0) {  // half traced: exercises the optional section
      req.trace_id = rng.NextU64();
    }
    if (rng.NextBounded(2) == 0) {  // half prioritized: second optional section
      req.priority = static_cast<uint8_t>(1 + rng.NextBounded(255));
    }
    return serve::EncodeRequest(req);
  }
  if (target == "response") {
    serve::InsightResponse resp;
    resp.id = rng.NextU64();
    resp.error = static_cast<serve::ErrorCode>(rng.NextBounded(11));  // incl. kShedded
    resp.error_message = RandomBytes(rng, 64);
    resp.nf_name = RandomBytes(rng, 24);
    resp.accelerator = RandomBytes(rng, 16);
    resp.suggested_cores = static_cast<int>(rng.NextInt(-4, 64));
    resp.total_compute = rng.NextDouble() * 1000;
    resp.naive_mpps = rng.NextDouble() * 100;
    resp.rendered = RandomBytes(rng, 200);
    if (rng.NextBounded(2) == 0) {  // half carry the optional breakdown section
      resp.breakdown.valid = true;
      resp.breakdown.trace_id = rng.NextU64();
      resp.breakdown.cache_hit = rng.NextBounded(2) == 0;
      resp.breakdown.queue_us = static_cast<uint32_t>(rng.NextU64());
      resp.breakdown.infer_us = static_cast<uint32_t>(rng.NextU64());
      resp.breakdown.total_us = static_cast<uint32_t>(rng.NextU64());
    }
    if (rng.NextBounded(2) == 0) {  // half carry the optional retry-hint section
      resp.retry_after_ms = static_cast<uint32_t>(1 + rng.NextBounded(60000));
    }
    return serve::EncodeResponse(resp);
  }
  if (target == "artifact") {
    return artifact_bytes;
  }
  if (target == "control") {
    uint64_t pick = rng.NextBounded(3);
    if (pick == 0) {
      serve::ControlRequest creq;
      creq.op = static_cast<serve::ControlOp>(rng.NextBounded(4));  // incl. kReload
      return serve::EncodeControlRequest(creq);
    }
    if (pick == 1) {
      // Reload frames get a dedicated generator arm: they are the only
      // state-changing control op, so their parser deserves the densest
      // adversarial coverage (Mutate() then flips/truncates/extends them).
      serve::ControlRequest creq;
      creq.op = serve::ControlOp::kReload;
      return serve::EncodeControlRequest(creq);
    }
    serve::ControlResponse cresp;
    cresp.op = static_cast<serve::ControlOp>(rng.NextBounded(4));
    cresp.ok = rng.NextBounded(2) == 0;
    cresp.error = RandomBytes(rng, 32);
    cresp.json = RandomBytes(rng, 160);
    return serve::EncodeControlResponse(cresp);
  }
  std::string stream;
  size_t n = 1 + rng.NextBounded(3);
  for (size_t i = 0; i < n; ++i) {
    serve::AppendFrame(&stream, RandomBytes(rng, 300));
  }
  return stream;
}

void Mutate(Rng& rng, std::string* bytes) {
  size_t edits = 1 + rng.NextBounded(8);
  for (size_t e = 0; e < edits; ++e) {
    if (bytes->empty()) {
      bytes->push_back(static_cast<char>(rng.NextU64() & 0xff));
      continue;
    }
    switch (rng.NextBounded(4)) {
      case 0:  // flip a byte
        (*bytes)[rng.NextBounded(bytes->size())] ^=
            static_cast<char>(1 + rng.NextBounded(255));
        break;
      case 1:  // truncate
        bytes->resize(rng.NextBounded(bytes->size()));
        break;
      case 2:  // insert a byte
        bytes->insert(bytes->begin() + rng.NextBounded(bytes->size() + 1),
                      static_cast<char>(rng.NextU64() & 0xff));
        break;
      default:  // append garbage
        bytes->append(RandomBytes(rng, 8));
        break;
    }
  }
}

int ServeFuzz(uint64_t seed, int iters, const std::string& corpus_out) {
  const char* targets[] = {"request", "response", "artifact", "frame", "control"};
  // A default-constructed (untrained) bundle serializes quickly and still
  // exercises every section parser.
  std::string artifact_bytes = serve::SerializeBundle(TrainedBundle{});
  Rng rng(seed);
  int failures = 0;
  for (int i = 0; i < iters; ++i) {
    std::string target = targets[i % 5];
    std::string bytes = BaseServeBytes(rng, target, artifact_bytes);
    if (rng.NextBounded(8) != 0) {  // 1-in-8 stays unmutated (accept path)
      Mutate(rng, &bytes);
    }
    std::string why;
    if (CheckServeBytes(target, bytes, &why)) {
      continue;
    }
    ++failures;
    std::printf("[SERVE-MISMATCH] iter=%d target=%s: %s\n", i, target.c_str(),
                why.c_str());
    if (!corpus_out.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(corpus_out, ec);
      FuzzCase c;
      c.kind = "serve";
      c.target = target;
      c.hex = HexEncode(bytes);
      c.note = why;
      std::ostringstream name;
      name << corpus_out << "/serve_" << seed << "_" << i << ".case";
      if (WriteCaseFile(c, name.str())) {
        std::printf("  wrote %s\n", name.str().c_str());
      }
    }
  }
  std::printf("clara_fuzz --serve-fuzz: %d iteration(s), %d violation(s)\n", iters,
              failures);
  return failures == 0 ? 0 : 1;
}

// Writes the checked-in quantized-frame corpus: an artifact whose optional
// trailing CLRQ frame is intact, truncated, and CRC-corrupted. The replay
// invariant (CheckServeBytes) requires the intact case to load and
// round-trip and the damaged ones to be rejected gracefully — never to
// degrade into silently serving requantized weights.
int EmitQuantizedCorpus(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string bytes = serve::SerializeBundle(TrainedBundle{});
  // Offset of the CLRQ frame: main header (magic 4 + version 2 + crc 4 +
  // size 4) + main payload.
  uint32_t payload_size = 0;
  std::memcpy(&payload_size, bytes.data() + 10, 4);
  size_t quant_start = 14 + payload_size;
  if (quant_start + 14 >= bytes.size()) {
    std::fprintf(stderr, "emit-quantized-corpus: artifact has no quantized frame\n");
    return 1;
  }

  std::string truncated = bytes.substr(0, bytes.size() - 3);
  std::string badcrc = bytes;
  badcrc[quant_start + 14] ^= 0x11;  // first byte of the frame payload

  struct Case {
    const char* file;
    const std::string* bytes;
    const char* note;
  } cases[] = {
      {"serve_quantized_bundle.case", &bytes,
       "artifact with intact optional quantized-weights (CLRQ) frame"},
      {"serve_quantized_bundle_truncated.case", &truncated,
       "quantized frame truncated mid-payload; loader must reject"},
      {"serve_quantized_bundle_badcrc.case", &badcrc,
       "quantized frame payload corrupted; CRC check must reject"},
  };
  for (const Case& c : cases) {
    std::string why;
    if (!CheckServeBytes("artifact", *c.bytes, &why)) {
      std::fprintf(stderr, "emit-quantized-corpus: %s violates the invariant: %s\n",
                   c.file, why.c_str());
      return 1;
    }
    FuzzCase fc;
    fc.kind = "serve";
    fc.target = "artifact";
    fc.hex = HexEncode(*c.bytes);
    fc.note = c.note;
    std::string path = dir + "/" + c.file;
    if (!WriteCaseFile(fc, path)) {
      std::fprintf(stderr, "emit-quantized-corpus: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), c.bytes->size());
  }
  return 0;
}

// ---- modes ----

int ReplayPath(const std::string& path, bool dump) {
  std::vector<std::string> files;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    for (const auto& e : std::filesystem::directory_iterator(path)) {
      if (e.path().extension() == ".case") {
        files.push_back(e.path().string());
      }
    }
    std::sort(files.begin(), files.end());
  } else {
    files.push_back(path);
  }
  int failures = 0;
  for (const std::string& f : files) {
    FuzzCase c;
    if (!ParseCaseFile(f, &c)) {
      ++failures;
      continue;
    }
    if (c.kind == "serve") {
      std::string bytes, why;
      if (!HexDecode(c.hex, &bytes)) {
        ++failures;
        std::printf("[FAIL] %s: bad hex payload\n", f.c_str());
      } else if (CheckServeBytes(c.target, bytes, &why)) {
        std::printf("[ OK ] %s (%s, %zu bytes)\n", f.c_str(), c.target.c_str(),
                    bytes.size());
      } else {
        ++failures;
        std::printf("[FAIL] %s: %s\n", f.c_str(), why.c_str());
      }
      continue;
    }
    Program p = GenProgram(c);
    std::vector<Packet> pkts = GenPackets(c);
    if (dump) {
      std::printf("---- %s: program ----\n%s\n", f.c_str(), ToSource(p).c_str());
      NfInstance inst(CloneProgram(p), 1);
      if (inst.ok()) {
        std::printf("---- lowered IR ----\n%s\n", ToString(inst.module()).c_str());
      }
    }
    DiffResult r = RunDifferential(p, pkts);
    if (r.ok) {
      std::printf("[ OK ] %s (%llu packets)\n", f.c_str(),
                  static_cast<unsigned long long>(r.packets_run));
    } else {
      ++failures;
      std::printf("[FAIL] %s: %s (packet %d)\n", f.c_str(), r.detail.c_str(),
                  r.packet_index);
    }
  }
  std::printf("clara_fuzz replay: %zu case(s), %d failure(s)\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

int Fuzz(uint64_t seed, int iters, uint32_t pkts, const std::string& corpus_out) {
  const char* profiles[] = {"default", "uniform", "generic"};
  int failures = 0;
  uint64_t total_packets = 0;
  for (int i = 0; i < iters; ++i) {
    FuzzCase c;
    c.seed = seed + static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
    c.index = i;
    c.profile = profiles[i % 3];
    c.wl_seed = seed ^ (0xc2b2ae3d27d4eb4fULL + i);
    c.wl_flows = 4 + static_cast<uint32_t>(i % 61);
    c.wl_pkts = pkts;
    Program prog = GenProgram(c);
    std::vector<Packet> trace = GenPackets(c);
    DiffResult r = RunDifferential(prog, trace);
    total_packets += r.packets_run;
    if (r.ok) {
      continue;
    }
    ++failures;
    std::printf("[MISMATCH] iter=%d seed=%llu profile=%s: %s (packet %d)\n", i,
                static_cast<unsigned long long>(c.seed), c.profile.c_str(),
                r.detail.c_str(), r.packet_index);
    if (r.setup_failed) {
      continue;  // synthesizer/lowering bug; nothing to shrink
    }
    // Shrink: packets first (cheapest), then statements.
    std::vector<uint32_t> all;
    for (uint32_t k = 0; k < trace.size(); ++k) {
      all.push_back(k);
    }
    c.pkts = DdminPackets(prog, trace, all);
    std::vector<Packet> small;
    for (uint32_t k : c.pkts) {
      small.push_back(trace[k]);
    }
    std::set<int> keep = MinimizeStmts(prog, small);
    if (static_cast<int>(keep.size()) < CountStmts(prog.body)) {
      c.has_keep = true;
      c.keep.assign(keep.begin(), keep.end());
    }
    c.note = r.detail;
    std::printf("  shrunk to %zu packet(s), %zu statement(s)\n", c.pkts.size(),
                keep.size());
    if (!corpus_out.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(corpus_out, ec);
      std::ostringstream name;
      name << corpus_out << "/case_" << c.seed << "_" << c.index << ".case";
      if (WriteCaseFile(c, name.str())) {
        std::printf("  wrote %s\n", name.str().c_str());
      }
    }
  }
  std::printf(
      "clara_fuzz: %d iteration(s), %llu packet(s) cross-checked, %d "
      "mismatch(es)\n",
      iters, static_cast<unsigned long long>(total_packets), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace clara

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int iters = 0;
  uint32_t pkts = 32;
  bool dump = false;
  bool serve_fuzz = false;
  std::string replay, corpus_out, emit_quantized;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto val = [&a](const char* pfx) { return a.substr(std::strlen(pfx)); };
    if (a == "--dump") {
      dump = true;
    } else if (a == "--serve-fuzz") {
      serve_fuzz = true;
    } else if (a.rfind("--seed=", 0) == 0) {
      seed = std::stoull(val("--seed="));
    } else if (a.rfind("--iters=", 0) == 0) {
      iters = std::stoi(val("--iters="));
    } else if (a.rfind("--pkts=", 0) == 0) {
      pkts = static_cast<uint32_t>(std::stoul(val("--pkts=")));
    } else if (a.rfind("--replay=", 0) == 0) {
      replay = val("--replay=");
    } else if (a.rfind("--corpus-out=", 0) == 0) {
      corpus_out = val("--corpus-out=");
    } else if (a.rfind("--emit-quantized-corpus=", 0) == 0) {
      emit_quantized = val("--emit-quantized-corpus=");
    } else {
      std::fprintf(stderr,
                   "usage: clara_fuzz [--iters=N] [--seed=S] [--pkts=M]\n"
                   "                  [--corpus-out=DIR] [--replay=FILE|DIR]\n"
                   "                  [--serve-fuzz]\n"
                   "                  [--emit-quantized-corpus=DIR]\n");
      return 2;
    }
  }
  if (!emit_quantized.empty()) {
    return clara::EmitQuantizedCorpus(emit_quantized);
  }
  if (!replay.empty()) {
    return clara::ReplayPath(replay, dump);
  }
  if (iters == 0) {
    const char* env = std::getenv("CLARA_FUZZ_ITERS");
    iters = env != nullptr ? std::atoi(env) : 200;
    if (iters <= 0) {
      iters = 200;
    }
  }
  if (serve_fuzz) {
    return clara::ServeFuzz(seed, iters, corpus_out);
  }
  return clara::Fuzz(seed, iters, pkts, corpus_out);
}
