// clara_client — client / codec utility for the clara_serve wire protocol.
//
// Modes:
//   --emit             write request frame(s) to stdout (pipe into clara_serve)
//   --emit-malformed   write a deliberately undecodable frame (error-path test)
//   --decode           read response frames from stdin, print them readably
//   --socket=PATH      connect to a clara_serve Unix socket, send the
//                      requests, and decode the responses in one step
//   stats|health|dump|reload
//                      control-plane query: send one control frame over
//                      --socket=PATH and print the JSON answer to stdout
//
// Request flags (for --emit / --socket):
//   --element=NAME     registry element to analyze
//   --source-file=F    inline mini-Click source instead ("-" = stdin)
//   --workload=small|large
//   --deadline-ms=N    per-request deadline (0 = none)
//   --count=N          emit N copies with ids 1..N (default 1)
//   --trace-id=N       tag the request(s) for end-to-end tracing (the daemon
//                      assigns ids itself when 0 and a trace sink is live)
//   --priority=N       shed class 0..255 (higher survives brownout shedding)
//   --full             (--decode) print the rendered insight text and the
//                      per-stage latency breakdown too
//
// Retry flags (--socket only):
//   --retries=N        retry transient failures (queue-full, shedded,
//                      shutdown, internal, dropped connections) up to N
//                      times with exponential backoff + jitter, honoring the
//                      server's retry_after_ms hint; only the failed request
//                      ids are re-sent
//   --retry-base-ms=N  first-retry delay before jitter (default 25)
//
// Example round trip:
//   clara_client --emit --element=aggcounter --count=2 \
//     | clara_serve --model-dir=models/ --pipe | clara_client --decode
#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/proto.h"
#include "src/serve/retry.h"
#include "src/util/net.h"

namespace {

using namespace clara;

int Usage() {
  std::fprintf(stderr,
               "usage: clara_client --emit|--emit-malformed|--decode|--socket=PATH\n"
               "         [--element=NAME | --source-file=F] [--workload=small|large]\n"
               "         [--deadline-ms=N] [--count=N] [--trace-id=N] [--priority=N]\n"
               "         [--retries=N] [--retry-base-ms=N] [--full]\n"
               "   or: clara_client stats|health|dump|reload --socket=PATH\n");
  return 2;
}

bool ReadAll(std::FILE* f, std::string* out) {
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  return std::ferror(f) == 0;
}

std::vector<serve::InsightRequest> BuildRequests(const std::string& element,
                                                 const std::string& source,
                                                 const WorkloadSpec& workload,
                                                 uint32_t deadline_ms, int count,
                                                 uint64_t trace_id, uint8_t priority) {
  std::vector<serve::InsightRequest> reqs;
  reqs.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    serve::InsightRequest req;
    req.id = static_cast<uint64_t>(i) + 1;
    req.element = element;
    req.source = source;
    req.workload = workload;
    req.deadline_ms = deadline_ms;
    // Distinct trace id per copy so traced requests stay distinguishable.
    req.trace_id = trace_id == 0 ? 0 : trace_id + static_cast<uint64_t>(i);
    req.priority = priority;
    reqs.push_back(std::move(req));
  }
  return reqs;
}

std::string EncodeFrames(const std::vector<serve::InsightRequest>& reqs) {
  std::string out;
  for (const auto& req : reqs) {
    serve::AppendFrame(&out, serve::EncodeRequest(req));
  }
  return out;
}

void PrintResponse(const serve::InsightResponse& resp, bool full) {
  if (resp.error != serve::ErrorCode::kOk) {
    std::printf("[%llu] ERROR %s: %s\n", static_cast<unsigned long long>(resp.id),
                serve::ErrorCodeName(resp.error), resp.error_message.c_str());
    return;
  }
  std::printf("[%llu] %s: accel=%s cores=%d compute=%.1f state=%u "
              "naive=%.2fMpps/%.2fus tuned=%.2fMpps/%.2fus\n",
              static_cast<unsigned long long>(resp.id), resp.nf_name.c_str(),
              resp.accelerator.c_str(), resp.suggested_cores, resp.total_compute,
              resp.total_mem_state, resp.naive_mpps, resp.naive_us, resp.tuned_mpps,
              resp.tuned_us);
  if (full && resp.breakdown.valid) {
    const serve::LatencyBreakdown& b = resp.breakdown;
    std::printf("[%llu]   trace=%llu %s queue=%uus parse=%uus infer=%uus "
                "analyze=%uus encode=%uus total=%uus\n",
                static_cast<unsigned long long>(resp.id),
                static_cast<unsigned long long>(b.trace_id),
                b.cache_hit ? "cache-hit" : "cache-miss", b.queue_us, b.parse_us,
                b.infer_us, b.analyze_us, b.encode_us, b.total_us);
  }
  if (full && !resp.rendered.empty()) {
    std::printf("%s", resp.rendered.c_str());
  }
}

// Decodes every response frame in `data`; returns the count of frames that
// carried a serve-level error (malformed frames count too).
int DecodeStream(const std::string& data, bool full, int* errors) {
  serve::FrameReader reader;
  reader.Feed(data.data(), data.size());
  std::string frame;
  int frames = 0;
  while (reader.Next(&frame)) {
    ++frames;
    serve::InsightResponse resp;
    std::string err;
    if (!serve::ParseResponse(frame, &resp, &err)) {
      std::printf("[?] undecodable response: %s\n", err.c_str());
      ++*errors;
      continue;
    }
    if (resp.error != serve::ErrorCode::kOk) {
      ++*errors;
    }
    PrintResponse(resp, full);
  }
  return frames;
}

// One socket round trip: connect, send all of `requests`, half-close, read
// the reply stream until the daemon closes. False on any transport error
// (errno text on stderr); short writes and EAGAIN are handled uniformly by
// the net helpers.
bool SocketExchange(const std::string& path, const std::string& requests,
                    std::string* reply) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "clara_client: socket: %s\n", std::strerror(errno));
    return false;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "clara_client: socket path too long\n");
    ::close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    std::fprintf(stderr, "clara_client: connect %s: %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return false;
  }
  std::string io_error;
  if (!net::WriteAll(fd, requests, &io_error)) {
    std::fprintf(stderr, "clara_client: %s\n", io_error.c_str());
    ::close(fd);
    return false;
  }
  ::shutdown(fd, SHUT_WR);
  char buf[1 << 16];
  for (;;) {
    size_t n = 0;
    net::IoStatus st = net::ReadSome(fd, buf, sizeof(buf), &n, &io_error);
    if (st == net::IoStatus::kInterrupted) {
      continue;
    }
    if (st == net::IoStatus::kError) {
      std::fprintf(stderr, "clara_client: %s\n", io_error.c_str());
      ::close(fd);
      return false;
    }
    if (st == net::IoStatus::kEof) {
      break;
    }
    reply->append(buf, n);
  }
  ::close(fd);
  return true;
}

// Socket mode with bounded retry: transient per-request failures (and whole
// dropped connections) are retried with exponential backoff + jitter, only
// re-sending the request ids that failed; the server's retry_after_ms hint
// floors each delay. Responses print in id order once everything settles.
int RunSocket(const std::string& path, std::vector<serve::InsightRequest> pending,
              bool full, serve::RetryPolicy::Options retry_opts) {
  serve::RetryPolicy policy(retry_opts);
  std::map<uint64_t, serve::InsightResponse> results;
  int undecodable = 0;
  int attempt = 0;
  while (!pending.empty()) {
    std::string data;
    bool transport_ok = SocketExchange(path, EncodeFrames(pending), &data);
    std::vector<serve::InsightRequest> next;
    uint32_t hint_ms = 0;
    if (transport_ok) {
      std::map<uint64_t, serve::InsightResponse> round;
      serve::FrameReader reader;
      reader.Feed(data.data(), data.size());
      std::string frame;
      while (reader.Next(&frame)) {
        serve::InsightResponse resp;
        std::string err;
        if (!serve::ParseResponse(frame, &resp, &err)) {
          std::printf("[?] undecodable response: %s\n", err.c_str());
          ++undecodable;
          continue;
        }
        round[resp.id] = std::move(resp);
      }
      for (auto& req : pending) {
        auto it = round.find(req.id);
        if (it == round.end()) {
          // Connection survived but this id got no answer (e.g. the daemon
          // restarted mid-stream): transient, retry the request.
          next.push_back(std::move(req));
          continue;
        }
        if (serve::IsRetryable(it->second.error) && policy.ShouldRetry(attempt)) {
          hint_ms = std::max(hint_ms, it->second.retry_after_ms);
          next.push_back(std::move(req));
          continue;
        }
        results[req.id] = std::move(it->second);
      }
    } else {
      next = std::move(pending);  // whole exchange failed: retry everything
    }
    if (next.empty()) {
      break;
    }
    if (!policy.ShouldRetry(attempt)) {
      for (auto& req : next) {
        serve::InsightResponse resp;
        resp.id = req.id;
        resp.error = serve::ErrorCode::kInternal;
        resp.error_message = "no answer after " + std::to_string(attempt) + " retries";
        results[req.id] = std::move(resp);
      }
      break;
    }
    uint32_t delay_ms = policy.NextDelayMs(attempt, hint_ms);
    std::fprintf(stderr, "clara_client: retrying %zu request(s) in %ums (attempt %d/%d)\n",
                 next.size(), delay_ms, attempt + 1, retry_opts.max_attempts);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    pending = std::move(next);
    ++attempt;
  }
  int errors = undecodable;
  for (const auto& [id, resp] : results) {
    if (resp.error != serve::ErrorCode::kOk) {
      ++errors;
    }
    PrintResponse(resp, full);
  }
  return errors == 0 ? 0 : 1;
}

// Extracts the value of a top-level `"key":"value"` string field from a JSON
// document (good enough for the engine's own stats envelope; no escapes).
std::string JsonStringField(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return "";
  }
  size_t start = pos + needle.size();
  size_t end = json.find('"', start);
  if (end == std::string::npos) {
    return "";
  }
  return json.substr(start, end - start);
}

// Control-plane query: one control frame out, one JSON document back.
int RunControl(const std::string& path, serve::ControlOp op) {
  if (path.empty()) {
    std::fprintf(stderr, "clara_client: %s needs --socket=PATH\n",
                 serve::ControlOpName(op));
    return Usage();
  }
  std::string out;
  serve::ControlRequest req;
  req.op = op;
  serve::AppendFrame(&out, serve::EncodeControlRequest(req));
  std::string data;
  if (!SocketExchange(path, out, &data)) {
    return 1;
  }
  serve::FrameReader reader;
  reader.Feed(data.data(), data.size());
  std::string frame;
  if (!reader.Next(&frame)) {
    std::fprintf(stderr, "clara_client: no control response frame\n");
    return 1;
  }
  serve::ControlResponse resp;
  std::string err;
  if (!serve::ParseControlResponse(frame, &resp, &err)) {
    std::fprintf(stderr, "clara_client: %s\n", err.c_str());
    return 1;
  }
  if (!resp.ok) {
    std::fprintf(stderr, "clara_client: %s failed: %s\n", serve::ControlOpName(resp.op),
                 resp.error.c_str());
    return 1;
  }
  if (op == serve::ControlOp::kStats) {
    // One human-readable line on stderr (stdout stays a single JSON document)
    // so load tests can confirm which inference path they measured.
    std::string infer = JsonStringField(resp.json, "infer");
    std::string simd = JsonStringField(resp.json, "simd");
    if (!infer.empty() || !simd.empty()) {
      std::fprintf(stderr, "clara_client: infer=%s simd=%s\n", infer.c_str(),
                   simd.c_str());
    }
  }
  std::printf("%s\n", resp.json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kEmit, kEmitMalformed, kDecode, kSocket, kControl };
  Mode mode = Mode::kNone;
  serve::ControlOp control_op = serve::ControlOp::kStats;
  std::string socket_path;
  std::string element;
  std::string source_file;
  std::string workload_name = "small";
  uint32_t deadline_ms = 0;
  uint64_t trace_id = 0;
  int count = 1;
  int priority = 0;
  bool full = false;
  serve::RetryPolicy::Options retry_opts;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--emit") {
      mode = Mode::kEmit;
    } else if (a == "--emit-malformed") {
      mode = Mode::kEmitMalformed;
    } else if (a == "--decode") {
      mode = Mode::kDecode;
    } else if (a == "stats" || a == "health" || a == "dump" || a == "reload") {
      mode = Mode::kControl;
      control_op = a == "stats"    ? serve::ControlOp::kStats
                   : a == "health" ? serve::ControlOp::kHealth
                   : a == "dump"   ? serve::ControlOp::kDump
                                   : serve::ControlOp::kReload;
    } else if (a.rfind("--socket=", 0) == 0) {
      if (mode != Mode::kControl) {
        mode = Mode::kSocket;
      }
      socket_path = a.substr(std::strlen("--socket="));
    } else if (a.rfind("--trace-id=", 0) == 0) {
      trace_id = std::strtoull(a.c_str() + std::strlen("--trace-id="), nullptr, 10);
    } else if (a.rfind("--element=", 0) == 0) {
      element = a.substr(std::strlen("--element="));
    } else if (a.rfind("--source-file=", 0) == 0) {
      source_file = a.substr(std::strlen("--source-file="));
    } else if (a.rfind("--workload=", 0) == 0) {
      workload_name = a.substr(std::strlen("--workload="));
    } else if (a.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = static_cast<uint32_t>(
          std::strtoul(a.c_str() + std::strlen("--deadline-ms="), nullptr, 10));
    } else if (a.rfind("--count=", 0) == 0) {
      count = std::atoi(a.c_str() + std::strlen("--count="));
    } else if (a.rfind("--priority=", 0) == 0) {
      priority = std::atoi(a.c_str() + std::strlen("--priority="));
    } else if (a.rfind("--retries=", 0) == 0) {
      retry_opts.max_attempts = std::atoi(a.c_str() + std::strlen("--retries="));
    } else if (a.rfind("--retry-base-ms=", 0) == 0) {
      retry_opts.base_ms = static_cast<uint32_t>(
          std::strtoul(a.c_str() + std::strlen("--retry-base-ms="), nullptr, 10));
    } else if (a == "--full") {
      full = true;
    } else {
      return Usage();
    }
  }
  if (mode == Mode::kNone || count < 1 || priority < 0 || priority > 255 ||
      retry_opts.max_attempts < 0) {
    return Usage();
  }

  if (mode == Mode::kControl) {
    return RunControl(socket_path, control_op);
  }
  if (mode == Mode::kEmitMalformed) {
    // A frame whose payload is not a request message — the daemon must answer
    // with a structured kBadRequest, not crash.
    std::string out;
    serve::AppendFrame(&out, "definitely not a clara request");
    std::fwrite(out.data(), 1, out.size(), stdout);
    return 0;
  }
  if (mode == Mode::kDecode) {
    std::string data;
    if (!ReadAll(stdin, &data)) {
      std::fprintf(stderr, "clara_client: read error on stdin\n");
      return 1;
    }
    int errors = 0;
    int frames = DecodeStream(data, full, &errors);
    std::fprintf(stderr, "clara_client: %d response(s), %d error(s)\n", frames, errors);
    return errors == 0 ? 0 : 1;
  }

  std::string source;
  if (!source_file.empty()) {
    if (source_file == "-") {
      if (!ReadAll(stdin, &source)) {
        std::fprintf(stderr, "clara_client: read error on stdin\n");
        return 1;
      }
    } else {
      std::FILE* f = std::fopen(source_file.c_str(), "rb");
      if (f == nullptr || !ReadAll(f, &source)) {
        std::fprintf(stderr, "clara_client: cannot read %s\n", source_file.c_str());
        if (f != nullptr) {
          std::fclose(f);
        }
        return 1;
      }
      std::fclose(f);
    }
  }
  if (element.empty() && source.empty()) {
    std::fprintf(stderr, "clara_client: need --element=NAME or --source-file=F\n");
    return Usage();
  }
  WorkloadSpec workload =
      workload_name == "large" ? WorkloadSpec::LargeFlows() : WorkloadSpec::SmallFlows();
  std::vector<serve::InsightRequest> requests = BuildRequests(
      element, source, workload, deadline_ms, count, trace_id,
      static_cast<uint8_t>(priority));
  if (mode == Mode::kSocket) {
    return RunSocket(socket_path, std::move(requests), full, retry_opts);
  }
  std::string out = EncodeFrames(requests);
  std::fwrite(out.data(), 1, out.size(), stdout);
  return 0;
}
