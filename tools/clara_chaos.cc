// clara_chaos — chaos harness for the clara_serve daemon.
//
// Spawns a real daemon (fork/exec), drives it over its Unix socket, and
// verifies the self-healing properties the serve plane claims:
//
//   faults         for every injectable fault site (src/util/fault.h) at
//                  prob 0.05 with a fixed seed: no daemon crash, every
//                  request eventually answers byte-equal to a fault-free
//                  baseline under bounded retries, the stats envelope proves
//                  injections actually happened, and the daemon still
//                  shuts down cleanly afterwards. Artifact sites are
//                  exercised by interleaving reload control frames.
//   killrestart    SIGKILL mid-traffic, restart on the same socket, assert
//                  bounded recovery and byte-equal answers afterwards.
//   dropframe      torn frames: a length prefix promising more bytes than
//                  ever arrive, raw garbage, then a clean exchange must
//                  still work on the same daemon.
//   reload         hot reload under load (SIGHUP + control frames): every
//                  in-flight request answers OK on the first try, and the
//                  health artifact_version bumps.
//   corruptreload  corrupt the bundle on disk, reload is rejected, the old
//                  model keeps serving byte-equal; restore the file and the
//                  next reload succeeds with a version bump.
//
// Everything is deterministic: fault draws are seeded, and "no wrong
// answer" is a byte-compare of response bodies against a clean-run baseline
// captured at startup.
//
// Usage:
//   clara_chaos --serve=PATH/clara_serve --model-dir=DIR --workdir=DIR
//               [--iters=N] [--seed=N] [--scenario=NAME|all]
#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/serve/artifact.h"
#include "src/serve/proto.h"
#include "src/serve/retry.h"
#include "src/util/fault.h"

namespace {

using namespace clara;

struct ChaosConfig {
  std::string serve_bin;
  std::string model_dir;
  std::string workdir;
  std::string scenario = "all";
  int iters = 60;
  uint64_t seed = 1;
};

const char* kElements[] = {"aggcounter", "heavyhitter", "udpcount", "iplookup"};
constexpr size_t kElementCount = sizeof(kElements) / sizeof(kElements[0]);
constexpr size_t kBatch = 8;  // requests per exchange (exercises micro-batching)

int g_failures = 0;

void Fail(const std::string& what) {
  std::fprintf(stderr, "clara_chaos: FAIL: %s\n", what.c_str());
  ++g_failures;
}

void Note(const std::string& what) {
  std::fprintf(stderr, "clara_chaos: %s\n", what.c_str());
}

// ---- daemon management ----

pid_t StartDaemon(const ChaosConfig& cfg, const std::string& socket_path,
                  const std::string& model_dir, const std::string& fault_spec,
                  const std::string& log_path) {
  std::vector<std::string> args;
  args.push_back(cfg.serve_bin);
  args.push_back("--model-dir=" + model_dir);
  args.push_back("--socket=" + socket_path);
  if (!fault_spec.empty()) {
    args.push_back("--fault=" + fault_spec);
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    return -1;
  }
  if (pid == 0) {
    int null_fd = ::open("/dev/null", O_RDONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, 0);
      ::close(null_fd);
    }
    int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, 2);
      ::close(log_fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

bool TryConnect(const std::string& path, int* out_fd) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return false;
  }
  *out_fd = fd;
  return true;
}

// Polls until the daemon accepts a connection; the bound doubles as the
// "recovery time is bounded" assertion for restart scenarios.
bool WaitForSocket(const std::string& path, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 50) {
    int fd;
    if (TryConnect(path, &fd)) {
      ::close(fd);
      return true;
    }
    ::usleep(50 * 1000);
  }
  return false;
}

// SIGTERM + bounded wait; true only when the daemon exited with status 0
// ("no crash" includes the shutdown path).
bool StopDaemonClean(pid_t pid) {
  ::kill(pid, SIGTERM);
  for (int i = 0; i < 150; ++i) {  // 15 s bound
    int status = 0;
    pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      return WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }
    ::usleep(100 * 1000);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  return false;
}

// True when the daemon died on its own (e.g. crashed) — used to assert it
// did NOT.
bool DaemonDied(pid_t pid) {
  int status = 0;
  return ::waitpid(pid, &status, WNOHANG) == pid;
}

// ---- wire helpers ----

bool Exchange(const std::string& path, const std::string& out, std::string* reply) {
  int fd;
  if (!TryConnect(path, &fd)) {
    return false;
  }
  size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    reply->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return true;
}

serve::InsightRequest MakeRequest(uint64_t id, const std::string& element) {
  serve::InsightRequest req;
  req.id = id;
  req.element = element;
  req.workload = WorkloadSpec::SmallFlows();
  return req;
}

// The comparison unit for "no wrong answer": the response body (everything
// after the echoed id, before the per-delivery sections).
std::string BodyOf(const serve::InsightResponse& resp) {
  return serve::EncodeResponseBody(resp);
}

// Sends one batch of requests with bounded retries; every id must end OK.
// Under fault sweeps ANY error is treated as transient (an injected decode
// fault can surface as kBadRequest), but a *successful* answer must be
// byte-equal to the baseline — corruption is never acceptable.
bool RunBatch(const std::string& socket_path,
              const std::vector<serve::InsightRequest>& reqs, int max_retries,
              const std::map<std::string, std::string>& baseline, std::string* why) {
  std::map<uint64_t, const serve::InsightRequest*> pending;
  for (const auto& r : reqs) {
    pending[r.id] = &r;
  }
  serve::RetryPolicy policy(
      serve::RetryPolicy::Options{max_retries, /*base_ms=*/5, /*max_ms=*/200,
                                  /*jitter_seed=*/42});
  for (int attempt = 0; !pending.empty(); ++attempt) {
    std::string out;
    for (const auto& [id, req] : pending) {
      serve::AppendFrame(&out, serve::EncodeRequest(*req));
    }
    std::string reply;
    uint32_t hint_ms = 0;
    if (Exchange(socket_path, out, &reply)) {
      serve::FrameReader reader;
      reader.Feed(reply.data(), reply.size());
      std::string frame;
      while (reader.Next(&frame)) {
        serve::InsightResponse resp;
        std::string err;
        if (!serve::ParseResponse(frame, &resp, &err)) {
          continue;  // torn by an injected write fault: retry covers it
        }
        auto it = pending.find(resp.id);
        if (it == pending.end()) {
          continue;
        }
        if (resp.error != serve::ErrorCode::kOk) {
          hint_ms = std::max(hint_ms, resp.retry_after_ms);
          continue;  // transient under chaos: stays pending
        }
        auto base = baseline.find(it->second->element);
        if (base != baseline.end() && BodyOf(resp) != base->second) {
          *why = "wrong answer for element '" + it->second->element +
                 "' (bytes differ from fault-free baseline)";
          return false;
        }
        pending.erase(it);
      }
    }
    if (pending.empty()) {
      break;
    }
    if (!policy.ShouldRetry(attempt)) {
      *why = std::to_string(pending.size()) + " request(s) unanswered after " +
             std::to_string(attempt) + " retries";
      return false;
    }
    ::usleep(policy.NextDelayMs(attempt, hint_ms) * 1000);
  }
  return true;
}

// Control query with bounded retries (socket fault sites can tear these
// connections, and binio.read faults can poison the daemon's parse of the
// control frame itself). A structured !ok answer is retried for idempotent
// queries — under chaos it usually means an injected decode fault — but for
// kReload it is returned immediately: a rejected reload is a *result* the
// scenarios assert on, not a transport hiccup. Returns the JSON document,
// empty on failure.
std::string ControlJson(const std::string& socket_path, serve::ControlOp op,
                        bool* ok_out) {
  serve::ControlRequest req;
  req.op = op;
  std::string out;
  serve::AppendFrame(&out, serve::EncodeControlRequest(req));
  bool retry_not_ok = op != serve::ControlOp::kReload;
  std::string last_error;
  for (int attempt = 0; attempt < 12; ++attempt) {
    std::string reply;
    if (Exchange(socket_path, out, &reply)) {
      serve::FrameReader reader;
      reader.Feed(reply.data(), reply.size());
      std::string frame;
      serve::ControlResponse resp;
      std::string err;
      if (reader.Next(&frame) && serve::ParseControlResponse(frame, &resp, &err)) {
        if (resp.ok || !retry_not_ok) {
          if (ok_out != nullptr) {
            *ok_out = resp.ok;
          }
          return resp.ok ? resp.json : resp.error;
        }
        last_error = resp.error;
      }
    }
    ::usleep(20 * 1000);
  }
  if (ok_out != nullptr) {
    *ok_out = false;
  }
  return last_error;
}

// Extracts a top-level unsigned JSON number field ("key":123).
uint64_t JsonU64Field(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) {
    return 0;
  }
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

std::vector<serve::InsightRequest> MakeBatch(size_t n) {
  std::vector<serve::InsightRequest> reqs;
  for (size_t i = 0; i < n; ++i) {
    reqs.push_back(MakeRequest(i + 1, kElements[i % kElementCount]));
  }
  return reqs;
}

// Fault-free baseline: the byte-exact response body per element.
bool CaptureBaseline(const ChaosConfig& cfg, const std::string& model_dir,
                     std::map<std::string, std::string>* baseline) {
  std::string sock = cfg.workdir + "/baseline.sock";
  pid_t pid = StartDaemon(cfg, sock, model_dir, "", cfg.workdir + "/baseline.log");
  if (pid < 0 || !WaitForSocket(sock, 15000)) {
    Fail("baseline daemon did not come up");
    return false;
  }
  std::string out;
  std::vector<serve::InsightRequest> reqs;
  for (size_t i = 0; i < kElementCount; ++i) {
    reqs.push_back(MakeRequest(i + 1, kElements[i]));
    serve::AppendFrame(&out, serve::EncodeRequest(reqs.back()));
  }
  std::string reply;
  bool ok = Exchange(sock, out, &reply);
  if (ok) {
    serve::FrameReader reader;
    reader.Feed(reply.data(), reply.size());
    std::string frame;
    while (reader.Next(&frame)) {
      serve::InsightResponse resp;
      std::string err;
      if (serve::ParseResponse(frame, &resp, &err) &&
          resp.error == serve::ErrorCode::kOk && resp.id >= 1 &&
          resp.id <= kElementCount) {
        (*baseline)[kElements[resp.id - 1]] = BodyOf(resp);
      }
    }
  }
  bool clean = StopDaemonClean(pid);
  if (baseline->size() != kElementCount || !clean) {
    Fail("baseline capture incomplete");
    return false;
  }
  return true;
}

// Injected-fault count for one site from the stats envelope; *stats_ok is
// false when the control query itself failed.
uint64_t InjectedCount(const std::string& socket_path, const std::string& site,
                       bool* stats_ok) {
  std::string stats = ControlJson(socket_path, serve::ControlOp::kStats, stats_ok);
  if (!*stats_ok) {
    return 0;
  }
  size_t pos = stats.find("\"" + site + "\":{");
  if (pos == std::string::npos) {
    return 0;
  }
  return JsonU64Field(stats.substr(pos), "injected");
}

// ---- scenarios ----

void ScenarioFaults(const ChaosConfig& cfg, const std::string& model_dir,
                    const std::map<std::string, std::string>& baseline) {
  // Sites on the request path: plain traffic sweeps. Artifact sites only
  // draw during (re)loads, so their sweeps interleave reload frames.
  const struct {
    const char* site;
    bool with_reloads;
  } kSweeps[] = {
      {"binio.read", false},  {"sock.read", false},    {"sock.write", false},
      {"sock.accept", false}, {"queue.admit", false},  {"dispatch", false},
      {"artifact.crc", true}, {"artifact.load", true},
  };
  int sweep_idx = 0;
  for (const auto& sweep : kSweeps) {
    std::string site = sweep.site;
    std::string spec =
        site + ":0.05:" + std::to_string(cfg.seed + static_cast<uint64_t>(sweep_idx));
    ++sweep_idx;
    std::string sock = cfg.workdir + "/fault.sock";
    std::string log = cfg.workdir + "/fault_" + site + ".log";
    pid_t pid = StartDaemon(cfg, sock, model_dir, spec, log);
    if (pid < 0 || !WaitForSocket(sock, 15000)) {
      Fail("fault sweep " + site + ": daemon did not come up");
      continue;
    }
    bool sweep_ok = true;
    int sent = 0;
    int reloads = 0;
    std::string why;
    while (sent < cfg.iters) {
      size_t n = std::min<size_t>(kBatch, static_cast<size_t>(cfg.iters - sent));
      if (!RunBatch(sock, MakeBatch(n), /*max_retries=*/12, baseline, &why)) {
        Fail("fault sweep " + site + ": " + why);
        sweep_ok = false;
        break;
      }
      sent += static_cast<int>(n);
      if (sweep.with_reloads) {
        // Reload may be rejected by the injected artifact fault — required
        // behavior, not an error. It must never take the daemon down.
        bool ok = false;
        std::string json = ControlJson(sock, serve::ControlOp::kReload, &ok);
        ++reloads;
        (void)json;
      }
      if (DaemonDied(pid)) {
        Fail("fault sweep " + site + ": daemon crashed");
        sweep_ok = false;
        pid = -1;
        break;
      }
    }
    if (pid > 0) {
      // Prove the sweep exercised the site: the injected counter must move.
      // At prob 0.05 a short sweep can legitimately draw zero injections, so
      // top up with single-request exchanges (each one a fresh connection,
      // i.e. fresh accept/read/write draws) or reload attempts until it does.
      bool stats_ok = false;
      uint64_t injected = InjectedCount(sock, site, &stats_ok);
      int extra = 0;
      while (stats_ok && injected == 0 && extra < 400) {
        if (sweep.with_reloads) {
          bool ok = false;
          ControlJson(sock, serve::ControlOp::kReload, &ok);
          ++reloads;
        } else {
          std::string w;
          if (!RunBatch(sock, MakeBatch(1), /*max_retries=*/12, baseline, &w)) {
            Fail("fault sweep " + site + ": top-up traffic failed: " + w);
            sweep_ok = false;
            break;
          }
          ++sent;
        }
        ++extra;
        injected = InjectedCount(sock, site, &stats_ok);
      }
      if (!stats_ok) {
        Fail("fault sweep " + site + ": stats query failed after sweep");
        sweep_ok = false;
      } else if (injected == 0 && sweep_ok) {
        Fail("fault sweep " + site + ": no injections recorded after " +
             std::to_string(extra) + " top-up rounds");
        sweep_ok = false;
      }
      bool healthy = false;
      ControlJson(sock, serve::ControlOp::kHealth, &healthy);
      if (!healthy) {
        Fail("fault sweep " + site + ": health query failed after sweep");
        sweep_ok = false;
      }
      if (!StopDaemonClean(pid)) {
        Fail("fault sweep " + site + ": daemon did not shut down cleanly");
        sweep_ok = false;
      }
    }
    if (sweep_ok) {
      Note("fault sweep " + site + ": OK (" + std::to_string(sent) + " requests" +
           (reloads > 0 ? ", " + std::to_string(reloads) + " reload attempts" : "") +
           ")");
    }
  }
}

void ScenarioKillRestart(const ChaosConfig& cfg, const std::string& model_dir,
                         const std::map<std::string, std::string>& baseline) {
  std::string sock = cfg.workdir + "/kill.sock";
  std::string log = cfg.workdir + "/kill.log";
  pid_t pid = StartDaemon(cfg, sock, model_dir, "", log);
  if (pid < 0 || !WaitForSocket(sock, 15000)) {
    Fail("killrestart: daemon did not come up");
    return;
  }
  std::string why;
  if (!RunBatch(sock, MakeBatch(kBatch), 3, baseline, &why)) {
    Fail("killrestart: pre-kill traffic failed: " + why);
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  // Hard-killed daemon: the socket file may linger, connects must fail or
  // hang up, and a fresh daemon must recover the endpoint within bounds.
  pid = StartDaemon(cfg, sock, model_dir, "", log);
  if (pid < 0 || !WaitForSocket(sock, 15000)) {
    Fail("killrestart: daemon did not recover within 15s");
    return;
  }
  if (!RunBatch(sock, MakeBatch(kBatch), 3, baseline, &why)) {
    Fail("killrestart: post-restart traffic failed: " + why);
  }
  if (!StopDaemonClean(pid)) {
    Fail("killrestart: restarted daemon did not shut down cleanly");
  } else {
    Note("killrestart: OK");
  }
}

void ScenarioDropFrame(const ChaosConfig& cfg, const std::string& model_dir,
                       const std::map<std::string, std::string>& baseline) {
  std::string sock = cfg.workdir + "/drop.sock";
  pid_t pid = StartDaemon(cfg, sock, model_dir, "", cfg.workdir + "/drop.log");
  if (pid < 0 || !WaitForSocket(sock, 15000)) {
    Fail("dropframe: daemon did not come up");
    return;
  }
  // A frame header promising 1000 bytes, then only 10, then hang up.
  int fd;
  if (TryConnect(sock, &fd)) {
    unsigned char torn[14] = {0xE8, 0x03, 0x00, 0x00};  // u32 LE length = 1000
    std::memset(torn + 4, 0xAB, 10);
    (void)!::write(fd, torn, sizeof(torn));
    ::close(fd);
  }
  // Raw garbage that never forms a frame.
  if (TryConnect(sock, &fd)) {
    (void)!::write(fd, "\xff\xfe\xfd\xfc", 4);
    ::close(fd);
  }
  if (DaemonDied(pid)) {
    Fail("dropframe: daemon crashed on torn frames");
    return;
  }
  std::string why;
  if (!RunBatch(sock, MakeBatch(kBatch), 3, baseline, &why)) {
    Fail("dropframe: clean exchange after torn frames failed: " + why);
  }
  if (!StopDaemonClean(pid)) {
    Fail("dropframe: daemon did not shut down cleanly");
  } else {
    Note("dropframe: OK");
  }
}

void ScenarioReload(const ChaosConfig& cfg, const std::string& model_dir,
                    const std::map<std::string, std::string>& baseline) {
  std::string sock = cfg.workdir + "/reload.sock";
  pid_t pid = StartDaemon(cfg, sock, model_dir, "", cfg.workdir + "/reload.log");
  if (pid < 0 || !WaitForSocket(sock, 15000)) {
    Fail("reload: daemon did not come up");
    return;
  }
  bool all_ok = true;
  int rounds = std::max(4, cfg.iters / static_cast<int>(kBatch));
  uint64_t version_before = 0;
  {
    bool ok = false;
    version_before = JsonU64Field(ControlJson(sock, serve::ControlOp::kHealth, &ok),
                                  "artifact_version");
  }
  for (int r = 0; r < rounds; ++r) {
    // Alternate the two reload triggers while traffic is in flight.
    if (r % 2 == 0) {
      ::kill(pid, SIGHUP);
    } else {
      bool ok = false;
      ControlJson(sock, serve::ControlOp::kReload, &ok);
      if (!ok) {
        Fail("reload: control-plane reload rejected on a healthy bundle");
        all_ok = false;
      }
    }
    // No retries here: hot reload must not drop a single in-flight request.
    std::string why;
    if (!RunBatch(sock, MakeBatch(kBatch), /*max_retries=*/0, baseline, &why)) {
      Fail("reload: request dropped during hot reload: " + why);
      all_ok = false;
      break;
    }
  }
  bool ok = false;
  uint64_t version_after = JsonU64Field(
      ControlJson(sock, serve::ControlOp::kHealth, &ok), "artifact_version");
  if (!ok || version_after <= version_before) {
    Fail("reload: artifact_version did not advance (before " +
         std::to_string(version_before) + ", after " + std::to_string(version_after) +
         ")");
    all_ok = false;
  }
  if (!StopDaemonClean(pid)) {
    Fail("reload: daemon did not shut down cleanly");
    all_ok = false;
  }
  if (all_ok) {
    Note("reload: OK (artifact_version " + std::to_string(version_before) + " -> " +
         std::to_string(version_after) + ")");
  }
}

bool CopyFile(const std::string& from, const std::string& to) {
  std::FILE* in = std::fopen(from.c_str(), "rb");
  if (in == nullptr) {
    return false;
  }
  std::FILE* out = std::fopen(to.c_str(), "wb");
  if (out == nullptr) {
    std::fclose(in);
    return false;
  }
  char buf[1 << 16];
  size_t n;
  bool ok = true;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    ok = std::fwrite(buf, 1, n, out) == n && ok;
  }
  ok = std::ferror(in) == 0 && ok;
  std::fclose(in);
  ok = std::fclose(out) == 0 && ok;
  return ok;
}

void ScenarioCorruptReload(const ChaosConfig& cfg,
                           const std::map<std::string, std::string>& baseline) {
  // Private model dir so corrupting the bundle does not poison other
  // scenarios (the daemon reloads from its own --model-dir).
  std::string dir = cfg.workdir + "/corrupt_models";
  ::mkdir(dir.c_str(), 0755);
  std::string src = serve::BundlePath(cfg.model_dir);
  std::string dst = serve::BundlePath(dir);
  if (!CopyFile(src, dst)) {
    Fail("corruptreload: cannot copy bundle");
    return;
  }
  std::string sock = cfg.workdir + "/corrupt.sock";
  pid_t pid = StartDaemon(cfg, sock, dir, "", cfg.workdir + "/corrupt.log");
  if (pid < 0 || !WaitForSocket(sock, 15000)) {
    Fail("corruptreload: daemon did not come up");
    return;
  }
  bool all_ok = true;
  std::string why;
  if (!RunBatch(sock, MakeBatch(kBatch), 3, baseline, &why)) {
    Fail("corruptreload: pre-corruption traffic failed: " + why);
    all_ok = false;
  }
  // Flip one byte in the middle of the artifact payload: the CRC check must
  // reject the reload and the old model must keep serving.
  {
    std::FILE* f = std::fopen(dst.c_str(), "r+b");
    if (f == nullptr) {
      Fail("corruptreload: cannot open bundle for corruption");
      StopDaemonClean(pid);
      return;
    }
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, size / 2, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, size / 2, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  bool ok = true;
  std::string err = ControlJson(sock, serve::ControlOp::kReload, &ok);
  if (ok) {
    Fail("corruptreload: reload of a corrupt bundle was accepted");
    all_ok = false;
  }
  uint64_t version = JsonU64Field(ControlJson(sock, serve::ControlOp::kHealth, &ok),
                                  "artifact_version");
  if (version != 1) {
    Fail("corruptreload: artifact_version changed after rejected reload");
    all_ok = false;
  }
  if (!RunBatch(sock, MakeBatch(kBatch), 3, baseline, &why)) {
    Fail("corruptreload: old model stopped serving correctly: " + why);
    all_ok = false;
  }
  // Restore the bundle: the next reload must succeed and bump the version.
  if (!CopyFile(src, dst)) {
    Fail("corruptreload: cannot restore bundle");
    all_ok = false;
  }
  err = ControlJson(sock, serve::ControlOp::kReload, &ok);
  if (!ok) {
    Fail("corruptreload: reload of the restored bundle rejected: " + err);
    all_ok = false;
  }
  version = JsonU64Field(ControlJson(sock, serve::ControlOp::kHealth, &ok),
                         "artifact_version");
  if (version != 2) {
    Fail("corruptreload: artifact_version is " + std::to_string(version) +
         " after restore, expected 2");
    all_ok = false;
  }
  if (!RunBatch(sock, MakeBatch(kBatch), 3, baseline, &why)) {
    Fail("corruptreload: post-restore traffic failed: " + why);
    all_ok = false;
  }
  if (!StopDaemonClean(pid)) {
    Fail("corruptreload: daemon did not shut down cleanly");
    all_ok = false;
  }
  if (all_ok) {
    Note("corruptreload: OK");
  }
}

// connfloods: a slowloris-style connection flood — dozens of clients that
// deliver a frame header plus half a payload and then stall half-open,
// pinning per-connection FrameReader state in the epoll loop — while the
// sock.accept fault site randomly drops incoming connections. Legitimate
// traffic threaded through the flood (with retries: an accept fault costs
// that connection) must keep answering byte-identically, and once the flood
// is released the daemon must return to clean service within one bounded
// retry batch.
void ScenarioConnFloods(const ChaosConfig& cfg, const std::string& model_dir,
                        const std::map<std::string, std::string>& baseline) {
  std::string sock = cfg.workdir + "/flood.sock";
  std::string spec = "sock.accept:0.05:" + std::to_string(cfg.seed + 101);
  pid_t pid =
      StartDaemon(cfg, sock, model_dir, spec, cfg.workdir + "/flood.log");
  if (pid < 0 || !WaitForSocket(sock, 15000)) {
    Fail("connfloods: daemon did not come up");
    return;
  }
  bool all_ok = true;

  // Mount the half-open flood. Writes can race an injected accept-drop
  // (EPIPE; SIGPIPE is ignored) — the fd still counts as flood pressure.
  constexpr size_t kFlood = 32;
  std::string teaser;
  serve::AppendFrame(&teaser, serve::EncodeRequest(MakeRequest(1, kElements[0])));
  teaser.resize(teaser.size() / 2);  // header promises more than ever arrives
  std::vector<int> floods;
  for (size_t i = 0; i < kFlood; ++i) {
    int fd;
    if (!TryConnect(sock, &fd)) {
      continue;
    }
    (void)!::write(fd, teaser.data(), teaser.size());
    floods.push_back(fd);
  }
  if (DaemonDied(pid)) {
    Fail("connfloods: daemon crashed under the half-open flood");
    return;
  }

  // Legitimate traffic through the flood: every answer byte-equal, retries
  // absorbing the accept faults.
  int sent = 0;
  std::string why;
  while (sent < cfg.iters) {
    size_t n = std::min<size_t>(kBatch, static_cast<size_t>(cfg.iters - sent));
    if (!RunBatch(sock, MakeBatch(n), /*max_retries=*/12, baseline, &why)) {
      Fail("connfloods: legit traffic failed mid-flood: " + why);
      all_ok = false;
      break;
    }
    sent += static_cast<int>(n);
  }

  // The transport stats see the stalled connections (an injected accept
  // fault drops ~5%, so a conservative floor).
  bool ok = false;
  std::string stats = ControlJson(sock, serve::ControlOp::kStats, &ok);
  uint64_t active = JsonU64Field(stats, "conn_active");
  if (!ok || active < kFlood / 2) {
    Fail("connfloods: transport stats report " + std::to_string(active) +
         " active connection(s) under a " + std::to_string(floods.size()) +
         "-connection flood");
    all_ok = false;
  }

  // Release the flood: bounded recovery back to clean service.
  for (int fd : floods) {
    ::close(fd);
  }
  if (DaemonDied(pid)) {
    Fail("connfloods: daemon crashed when the flood hung up");
    return;
  }
  if (!RunBatch(sock, MakeBatch(kBatch), /*max_retries=*/12, baseline, &why)) {
    Fail("connfloods: recovery after flood release failed: " + why);
    all_ok = false;
  }
  if (!StopDaemonClean(pid)) {
    Fail("connfloods: daemon did not shut down cleanly");
    all_ok = false;
  }
  if (all_ok) {
    Note("connfloods: OK (" + std::to_string(floods.size()) +
         " slowloris connection(s), " + std::to_string(sent) +
         " legit request(s))");
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: clara_chaos --serve=PATH --model-dir=DIR --workdir=DIR\n"
               "                   [--iters=N] [--seed=N]\n"
               "                   [--scenario=faults|killrestart|dropframe|reload|"
               "corruptreload|connfloods|all]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ChaosConfig cfg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--serve=", 0) == 0) {
      cfg.serve_bin = a.substr(std::strlen("--serve="));
    } else if (a.rfind("--model-dir=", 0) == 0) {
      cfg.model_dir = a.substr(std::strlen("--model-dir="));
    } else if (a.rfind("--workdir=", 0) == 0) {
      cfg.workdir = a.substr(std::strlen("--workdir="));
    } else if (a.rfind("--iters=", 0) == 0) {
      cfg.iters = std::atoi(a.c_str() + std::strlen("--iters="));
    } else if (a.rfind("--seed=", 0) == 0) {
      cfg.seed = std::strtoull(a.c_str() + std::strlen("--seed="), nullptr, 10);
    } else if (a.rfind("--scenario=", 0) == 0) {
      cfg.scenario = a.substr(std::strlen("--scenario="));
    } else {
      return Usage();
    }
  }
  if (cfg.serve_bin.empty() || cfg.model_dir.empty() || cfg.workdir.empty() ||
      cfg.iters < 1) {
    return Usage();
  }
  // SIGPIPE from a daemon we just killed must not take the harness down.
  ::signal(SIGPIPE, SIG_IGN);

  std::map<std::string, std::string> baseline;
  if (!CaptureBaseline(cfg, cfg.model_dir, &baseline)) {
    return 1;
  }
  Note("baseline captured (" + std::to_string(baseline.size()) + " elements)");

  bool all = cfg.scenario == "all";
  if (all || cfg.scenario == "faults") {
    ScenarioFaults(cfg, cfg.model_dir, baseline);
  }
  if (all || cfg.scenario == "killrestart") {
    ScenarioKillRestart(cfg, cfg.model_dir, baseline);
  }
  if (all || cfg.scenario == "dropframe") {
    ScenarioDropFrame(cfg, cfg.model_dir, baseline);
  }
  if (all || cfg.scenario == "reload") {
    ScenarioReload(cfg, cfg.model_dir, baseline);
  }
  if (all || cfg.scenario == "corruptreload") {
    ScenarioCorruptReload(cfg, baseline);
  }
  if (all || cfg.scenario == "connfloods") {
    ScenarioConnFloods(cfg, cfg.model_dir, baseline);
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "clara_chaos: %d failure(s)\n", g_failures);
    return 1;
  }
  std::fprintf(stderr, "clara_chaos: all scenarios passed\n");
  return 0;
}
