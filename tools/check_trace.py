#!/usr/bin/env python3
"""Trace self-check: run `clara_cli profile --trace` and validate the output.

Runs the CLI on one example NF, then checks that the emitted file is valid
JSON in Chrome-trace format (chrome://tracing / Perfetto loadable) and that
the expected pipeline-stage spans are present with sane fields. Wired into
ctest as `check_trace` (see tools/CMakeLists.txt).

Usage: check_trace.py <path-to-clara_cli> [element]
   or: check_trace.py --serve-trace <trace.json>

The second form validates a trace written by `clara_serve --trace=FILE`:
every traced request must have a `serve.request` root span, and every
per-stage span sharing that request's trace id must nest inside the root's
interval on the same track.
"""
import json
import subprocess
import sys
import tempfile
import os

REQUIRED_SPANS = {
    "cli.parse",
    "cli.lower",
    "cli.profile",
    "cli.demand",
    "cli.evaluate",
    "cli.pipeline",
}

# Serve-stage spans that may appear under a serve.request root.
SERVE_STAGE_SPANS = {
    "serve.queue_wait",
    "serve.parse",
    "serve.infer",
    "serve.analyze",
    "serve.encode",
}

VALID_PHASES = {"X", "C", "i"}

# Clock-rounding slack when checking span containment, in microseconds.
NEST_SLACK_US = 2


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_serve_trace(path):
    """Validate parent/child nesting of serve-stage spans in a daemon trace."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"serve trace is not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    # Group complete spans by trace id (spans without one are not request
    # spans and are ignored here).
    by_trace = {}
    for i, ev in enumerate(events):
        if ev.get("ph") != "X":
            continue
        trace_id = ev.get("args", {}).get("trace_id")
        if trace_id is None:
            continue
        if ev.get("name") not in SERVE_STAGE_SPANS | {"serve.request"}:
            fail(f"event {i} has a trace_id but unknown serve span "
                 f"name {ev.get('name')!r}")
        by_trace.setdefault(trace_id, []).append(ev)
    if not by_trace:
        fail("no spans carry args.trace_id — requests were not traced")

    for trace_id, spans in by_trace.items():
        roots = [s for s in spans if s["name"] == "serve.request"]
        if len(roots) != 1:
            fail(f"trace_id {trace_id}: expected exactly one serve.request "
             f"root span, got {len(roots)}")
        root = roots[0]
        children = [s for s in spans if s is not root]
        if not children:
            fail(f"trace_id {trace_id}: root span has no stage children")
        child_names = {s["name"] for s in children}
        if "serve.queue_wait" not in child_names:
            fail(f"trace_id {trace_id}: missing serve.queue_wait child "
                 f"(got {sorted(child_names)})")
        lo = root["ts"] - NEST_SLACK_US
        hi = root["ts"] + root["dur"] + NEST_SLACK_US
        for s in children:
            if s["tid"] != root["tid"]:
                fail(f"trace_id {trace_id}: child {s['name']} on track "
                     f"{s['tid']} but root on {root['tid']}")
            if s["ts"] < lo or s["ts"] + s["dur"] > hi:
                fail(f"trace_id {trace_id}: child {s['name']} "
                     f"[{s['ts']}, {s['ts'] + s['dur']}] escapes root "
                     f"[{root['ts']}, {root['ts'] + root['dur']}]")

    n_spans = sum(len(v) for v in by_trace.values())
    print(f"check_trace: OK ({len(by_trace)} traced request(s), "
          f"{n_spans} serve spans, nesting valid)")


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py <clara_cli> [element] | --serve-trace <trace.json>")
    if sys.argv[1] == "--serve-trace":
        if len(sys.argv) != 3:
            fail("usage: check_trace.py --serve-trace <trace.json>")
        check_serve_trace(sys.argv[2])
        return
    cli = sys.argv[1]
    element = sys.argv[2] if len(sys.argv) > 2 else "aggcounter"

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        jsonl_path = os.path.join(tmp, "trace.jsonl")
        cmd = [
            cli,
            "profile",
            element,
            f"--trace={trace_path}",
            f"--trace-jsonl={jsonl_path}",
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")

        # Chrome-trace JSON: must parse, must carry the stage spans.
        try:
            with open(trace_path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"trace file is not valid JSON: {e}")

        if not isinstance(doc, dict):
            fail("top-level value is not an object")
        events = doc.get("traceEvents")
        if not isinstance(events, list) or not events:
            fail("traceEvents missing or empty")
        if doc.get("displayTimeUnit") != "ms":
            fail("displayTimeUnit != ms")

        names = set()
        for i, ev in enumerate(events):
            for key in ("name", "ph", "ts", "pid", "tid"):
                if key not in ev:
                    fail(f"event {i} missing field {key!r}: {ev}")
            if ev["ph"] not in VALID_PHASES:
                fail(f"event {i} has unknown phase {ev['ph']!r}")
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                fail(f"event {i} has bad ts: {ev['ts']!r}")
            if ev["ph"] == "X":
                if "dur" not in ev or ev["dur"] < 0:
                    fail(f"complete event {i} has bad dur: {ev}")
            names.add(ev["name"])

        missing = REQUIRED_SPANS - names
        if missing:
            fail(f"missing pipeline spans: {sorted(missing)}; got {sorted(names)}")

        # JSONL: every line parses to an object with the same core fields.
        with open(jsonl_path) as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
        if len(lines) != len(events):
            fail(f"JSONL has {len(lines)} lines but Chrome trace has {len(events)} events")
        for i, line in enumerate(lines):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"JSONL line {i} invalid: {e}")
            if "name" not in obj or "ph" not in obj:
                fail(f"JSONL line {i} missing name/ph: {obj}")

    print(f"check_trace: OK ({len(events)} events, "
          f"{len(names & REQUIRED_SPANS)} pipeline spans, element={element})")


if __name__ == "__main__":
    main()
