#!/usr/bin/env python3
"""Trace self-check: run `clara_cli profile --trace` and validate the output.

Runs the CLI on one example NF, then checks that the emitted file is valid
JSON in Chrome-trace format (chrome://tracing / Perfetto loadable) and that
the expected pipeline-stage spans are present with sane fields. Wired into
ctest as `check_trace` (see tools/CMakeLists.txt).

Usage: check_trace.py <path-to-clara_cli> [element]
"""
import json
import subprocess
import sys
import tempfile
import os

REQUIRED_SPANS = {
    "cli.parse",
    "cli.lower",
    "cli.profile",
    "cli.demand",
    "cli.evaluate",
    "cli.pipeline",
}

VALID_PHASES = {"X", "C", "i"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py <clara_cli> [element]")
    cli = sys.argv[1]
    element = sys.argv[2] if len(sys.argv) > 2 else "aggcounter"

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        jsonl_path = os.path.join(tmp, "trace.jsonl")
        cmd = [
            cli,
            "profile",
            element,
            f"--trace={trace_path}",
            f"--trace-jsonl={jsonl_path}",
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")

        # Chrome-trace JSON: must parse, must carry the stage spans.
        try:
            with open(trace_path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"trace file is not valid JSON: {e}")

        if not isinstance(doc, dict):
            fail("top-level value is not an object")
        events = doc.get("traceEvents")
        if not isinstance(events, list) or not events:
            fail("traceEvents missing or empty")
        if doc.get("displayTimeUnit") != "ms":
            fail("displayTimeUnit != ms")

        names = set()
        for i, ev in enumerate(events):
            for key in ("name", "ph", "ts", "pid", "tid"):
                if key not in ev:
                    fail(f"event {i} missing field {key!r}: {ev}")
            if ev["ph"] not in VALID_PHASES:
                fail(f"event {i} has unknown phase {ev['ph']!r}")
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                fail(f"event {i} has bad ts: {ev['ts']!r}")
            if ev["ph"] == "X":
                if "dur" not in ev or ev["dur"] < 0:
                    fail(f"complete event {i} has bad dur: {ev}")
            names.add(ev["name"])

        missing = REQUIRED_SPANS - names
        if missing:
            fail(f"missing pipeline spans: {sorted(missing)}; got {sorted(names)}")

        # JSONL: every line parses to an object with the same core fields.
        with open(jsonl_path) as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
        if len(lines) != len(events):
            fail(f"JSONL has {len(lines)} lines but Chrome trace has {len(events)} events")
        for i, line in enumerate(lines):
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"JSONL line {i} invalid: {e}")
            if "name" not in obj or "ph" not in obj:
                fail(f"JSONL line {i} missing name/ph: {obj}")

    print(f"check_trace: OK ({len(events)} events, "
          f"{len(names & REQUIRED_SPANS)} pipeline spans, element={element})")


if __name__ == "__main__":
    main()
